// P — wall-clock microbenchmarks (google-benchmark): substrate primitives
// and end-to-end colorings through the unified scol::solve() entry point.
// These are engineering numbers (simulation throughput), not LOCAL rounds.
//
// Every google-benchmark flag works as usual; in addition,
//
//   $ ./bench_perf --baseline-out=BENCH_perf.json [--baseline-reps=N]
//
// records the per-series median real time (N repetitions, default 3) in
// the shared baseline schema (bench/baseline.h) under this machine's
// class key. CI runs the gbench JSON mode and feeds the artifact to
// tools/bench_compare.py — the bench-gate regression check; the baseline
// mode is how the checked-in BENCH_perf.json is (re)generated. See
// docs/BENCHMARKS.md.
#include <benchmark/benchmark.h>

#include <map>
#include <string>
#include <vector>

#include "baseline.h"
#include "scol/scol.h"

namespace {

using namespace scol;

Graph make_regular(Vertex n, Vertex d) {
  Rng rng(12345);
  return random_regular(n, d, rng);
}

// --- Substrate primitives. ---

void BM_BfsBall(benchmark::State& state) {
  const Graph g = make_regular(static_cast<Vertex>(state.range(0)), 4);
  Vertex v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ball(g, v, 6));
    v = (v + 17) % g.num_vertices();
  }
}
BENCHMARK(BM_BfsBall)->Arg(1024)->Arg(8192);

void BM_BlockDecomposition(benchmark::State& state) {
  Rng rng(7);
  const Graph g = gnm(static_cast<Vertex>(state.range(0)),
                      2 * state.range(0), rng);
  for (auto _ : state) benchmark::DoNotOptimize(block_decomposition(g));
}
BENCHMARK(BM_BlockDecomposition)->Arg(1024)->Arg(8192);

void BM_GallaiRecognition(benchmark::State& state) {
  Rng rng(9);
  const Graph g = random_gallai_tree(static_cast<Vertex>(state.range(0)), 5, rng);
  for (auto _ : state) benchmark::DoNotOptimize(is_gallai_tree(g));
}
BENCHMARK(BM_GallaiRecognition)->Arg(200)->Arg(2000);

void BM_ExactMad(benchmark::State& state) {
  Rng rng(11);
  const Graph g = gnm(static_cast<Vertex>(state.range(0)),
                      2 * state.range(0), rng);
  for (auto _ : state) benchmark::DoNotOptimize(maximum_average_degree(g));
}
BENCHMARK(BM_ExactMad)->Arg(256)->Arg(1024);

void BM_Planarity(benchmark::State& state) {
  Rng rng(13);
  const Graph g = random_stacked_triangulation(
      static_cast<Vertex>(state.range(0)), rng);
  for (auto _ : state) benchmark::DoNotOptimize(is_planar(g));
}
BENCHMARK(BM_Planarity)->Arg(256)->Arg(1024);

void BM_HappySet(benchmark::State& state) {
  const Graph g = make_regular(static_cast<Vertex>(state.range(0)), 4);
  const Vertex rho = paper_ball_radius(g.num_vertices());
  for (auto _ : state) benchmark::DoNotOptimize(compute_happy_set(g, 4, rho));
}
BENCHMARK(BM_HappySet)->Arg(1024)->Arg(8192);

void BM_HappySetParallel(benchmark::State& state) {
  const Graph g = make_regular(static_cast<Vertex>(state.range(0)), 4);
  const Vertex rho = paper_ball_radius(g.num_vertices());
  ThreadPoolExecutor pool;
  for (auto _ : state)
    benchmark::DoNotOptimize(compute_happy_set(g, 4, rho, &pool));
}
BENCHMARK(BM_HappySetParallel)->Arg(8192);

void BM_RulingForest(benchmark::State& state) {
  const Graph g = make_regular(static_cast<Vertex>(state.range(0)), 4);
  std::vector<char> u(static_cast<std::size_t>(g.num_vertices()), 1);
  for (auto _ : state)
    benchmark::DoNotOptimize(ruling_forest(g, u, 8, nullptr));
}
BENCHMARK(BM_RulingForest)->Arg(1024)->Arg(8192);

void BM_DistributedDPlus1(benchmark::State& state) {
  const Graph g = make_regular(static_cast<Vertex>(state.range(0)), 4);
  for (auto _ : state)
    benchmark::DoNotOptimize(distributed_degree_coloring(g, 4));
}
BENCHMARK(BM_DistributedDPlus1)->Arg(1024)->Arg(8192);

// --- End-to-end through the unified API. ---

// Registry dispatch + request validation overhead: a trivial graph, so the
// measured time is solve() machinery, not algorithm work.
void BM_SolveDispatchOverhead(benchmark::State& state) {
  const Graph g = path(2);
  const ColoringRequest req = make_request("greedy", g);
  RunContext ctx;
  for (auto _ : state) benchmark::DoNotOptimize(solve(req, ctx));
}
BENCHMARK(BM_SolveDispatchOverhead);

void BM_SolveSixColorPlanar(benchmark::State& state) {
  Rng rng(17);
  const Graph g = random_stacked_triangulation(
      static_cast<Vertex>(state.range(0)), rng);
  const ListAssignment lists = uniform_lists(g.num_vertices(), 6);
  const ColoringRequest req = make_request("planar6", g, lists);
  RunContext ctx;
  for (auto _ : state) benchmark::DoNotOptimize(solve(req, ctx));
}
BENCHMARK(BM_SolveSixColorPlanar)->Arg(256)->Arg(1024)->Unit(benchmark::kMillisecond);

void BM_SolveSparseRegular(benchmark::State& state) {
  const Graph g = make_regular(static_cast<Vertex>(state.range(0)), 4);
  const ListAssignment lists = uniform_lists(g.num_vertices(), 4);
  ColoringRequest req = make_request("sparse", g, lists);
  req.k = 4;
  RunContext ctx;
  for (auto _ : state) benchmark::DoNotOptimize(solve(req, ctx));
}
BENCHMARK(BM_SolveSparseRegular)->Arg(256)->Arg(1024)->Arg(4096)->Unit(benchmark::kMillisecond);

void BM_SolveSparseRegularParallel(benchmark::State& state) {
  const Graph g = make_regular(static_cast<Vertex>(state.range(0)), 4);
  const ListAssignment lists = uniform_lists(g.num_vertices(), 4);
  ColoringRequest req = make_request("sparse", g, lists);
  req.k = 4;
  ThreadPoolExecutor pool;
  RunContext ctx;
  ctx.executor = &pool;
  for (auto _ : state) benchmark::DoNotOptimize(solve(req, ctx));
}
BENCHMARK(BM_SolveSparseRegularParallel)->Arg(4096)->Unit(benchmark::kMillisecond);

void BM_SolveGpsPlanar(benchmark::State& state) {
  Rng rng(19);
  const Graph g = random_stacked_triangulation(
      static_cast<Vertex>(state.range(0)), rng);
  const ColoringRequest req = make_request("gps", g);
  RunContext ctx;
  for (auto _ : state) benchmark::DoNotOptimize(solve(req, ctx));
}
BENCHMARK(BM_SolveGpsPlanar)->Arg(1024)->Arg(8192)->Unit(benchmark::kMillisecond);

// Palette sparsification vs its full-palette twin on the same dense-degree
// instance: a d=64 regular graph with (d+1)-lists, the regime where the
// sampled palette (c log n colors) is genuinely smaller than the full one.
// Pinning both series keeps the sparsified path's overhead honest relative
// to the solver it wraps.
void BM_SparsifiedSweep(benchmark::State& state, const char* algo) {
  const Graph g = make_regular(static_cast<Vertex>(state.range(0)), 64);
  const ListAssignment lists = uniform_lists(g.num_vertices(), 65);
  ColoringRequest req = make_request(algo, g, lists);
  RunContext ctx;
  for (auto _ : state) benchmark::DoNotOptimize(solve(req, ctx));
}
BENCHMARK_CAPTURE(BM_SparsifiedSweep, dplus1_sparsified, "dplus1-sparsified")
    ->Arg(1024)->Arg(4096)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_SparsifiedSweep, dplus1_full, "randomized")
    ->Arg(1024)->Arg(4096)->Unit(benchmark::kMillisecond);

void BM_ReportToJson(benchmark::State& state) {
  Rng rng(23);
  const Graph g = random_stacked_triangulation(512, rng);
  const ListAssignment lists = uniform_lists(g.num_vertices(), 6);
  const ColoringReport report = solve(make_request("planar6", g, lists));
  for (auto _ : state)
    benchmark::DoNotOptimize(to_json(report, /*include_coloring=*/true).dump());
}
BENCHMARK(BM_ReportToJson);

// Console output as usual, plus per-series raw real times (ms) collected
// for the baseline writer: medians over repetitions become the pinned
// series values.
class CollectingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      const std::string name = run.run_name.str();
      auto [it, inserted] = samples_ms_.try_emplace(name);
      if (inserted) order_.push_back(name);
      it->second.push_back(run.GetAdjustedRealTime() /
                           benchmark::GetTimeUnitMultiplier(run.time_unit) *
                           1e3);
    }
    ConsoleReporter::ReportRuns(reports);
  }

  void fill(scol::bench::BaselineWriter& writer) const {
    for (const auto& name : order_)
      writer.add_median(name, samples_ms_.at(name), "ms",
                        /*higher_is_better=*/false);
  }

 private:
  std::map<std::string, std::vector<double>> samples_ms_;
  std::vector<std::string> order_;
};

}  // namespace

int main(int argc, char** argv) {
  const std::string baseline_out =
      scol::bench::take_flag(argc, argv, "--baseline-out");
  const std::string baseline_reps =
      scol::bench::take_flag(argc, argv, "--baseline-reps");

  std::vector<char*> args(argv, argv + argc);
  std::string reps_flag;
  if (!baseline_out.empty()) {
    // Baseline values are medians, so force repetitions unless the caller
    // already chose a count via the native flag.
    bool has_reps = false;
    for (char* a : args)
      if (std::string(a).rfind("--benchmark_repetitions", 0) == 0)
        has_reps = true;
    if (!has_reps) {
      reps_flag = "--benchmark_repetitions=" +
                  (baseline_reps.empty() ? std::string("3") : baseline_reps);
      args.push_back(reps_flag.data());
    }
  }
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data()))
    return 1;

  if (baseline_out.empty()) {
    // No baseline requested: defer to the library's own reporter selection
    // so --benchmark_format=json keeps producing the CI artifact.
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
  }

  CollectingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  scol::bench::BaselineWriter writer("bench_perf");
  reporter.fill(writer);
  if (writer.size() == 0 || !writer.write(baseline_out)) {
    std::fprintf(stderr, "bench_perf: cannot write baseline '%s'\n",
                 baseline_out.c_str());
    return 1;
  }
  std::fprintf(stderr, "bench_perf: wrote %zu series for %s to %s\n",
               writer.size(), scol::bench::machine_class().c_str(),
               baseline_out.c_str());
  return 0;
}
