// E1 — Theorem 1.3: round complexity scaling, driven through scol::solve.
//
// Paper claims: O(d^4 log^3 n) rounds in general, O(d^2 log^3 n) when the
// max degree is at most d; peel count k = O(d^3 log n) in general,
// O(d log n) degree-bounded. We measure total LOCAL rounds and peel counts
// across n for several d and report rounds / log^3(n) — a polylog shape
// means the normalized column stays near-constant (it can even fall, since
// with the paper radius most instances peel in O(1) levels).
//
//   $ ./bench_main_scaling --baseline-out=BENCH_scaling.json [--baseline-reps=N]
//
// The baseline mode repeats the sweep N times (default 3, identical
// seeds each rep) and pins the per-row wall_ms medians as
// "scaling/<family>/n=<n>/wall_ms" series — the shared schema of
// bench/baseline.h, so `tools/bench_compare.py merge` can fold the
// scaling curve into BENCH_perf.json.
#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "baseline.h"
#include "scol/scol.h"

using namespace scol;

int main(int argc, char** argv) {
  const std::string baseline_out =
      scol::bench::take_flag(argc, argv, "--baseline-out");
  const std::string baseline_reps =
      scol::bench::take_flag(argc, argv, "--baseline-reps");
  const int reps =
      baseline_out.empty()
          ? 1
          : (baseline_reps.empty()
                 ? 3
                 : std::max(1, std::atoi(baseline_reps.c_str())));

  std::cout << "E1 / Theorem 1.3: rounds and peels vs n (uniform d-lists)\n"
            << "families: d-regular (degree-bounded branch), union-of-forests"
               " and G(n,m) (general branch)\n"
            << "driven through solve(\"sparse\") with validating contexts\n\n";

  std::map<std::string, std::vector<double>> samples;
  std::vector<std::string> order;
  RunContext ctx;  // one context: every row reuses the same warmed arena
  ctx.validate = true;  // solve() re-checks every coloring independently
  for (int rep = 0; rep < reps; ++rep) {
    const bool print = rep == 0;
    Table t({"family", "d", "n", "peels", "rounds", "rounds/log2^3(n)",
             "wall_ms", "colors<=d", "valid"});

    Rng rng(20260610);  // re-seeded per rep: identical graphs every pass
    const auto run = [&](const char* family, const Graph& g, Vertex d) {
      const ListAssignment lists =
          uniform_lists(g.num_vertices(), static_cast<Color>(d));
      ColoringRequest req = make_request("sparse", g, lists);
      req.k = d;
      const ColoringReport r = solve(req, ctx);
      const double l = std::log2(static_cast<double>(g.num_vertices()));
      if (print)
        t.row(family, d, g.num_vertices(), r.metrics.get_int("peels", -1),
              r.rounds, static_cast<double>(r.rounds) / (l * l * l),
              r.wall_ms, r.colors_used <= d ? "yes" : "NO",
              r.ok() ? "yes" : "NO");
      const std::string series = std::string("scaling/") + family +
                                 "/n=" + std::to_string(g.num_vertices()) +
                                 "/wall_ms";
      auto [it, inserted] = samples.try_emplace(series);
      if (inserted) order.push_back(series);
      it->second.push_back(r.wall_ms);
    };

    for (Vertex n : {256, 512, 1024, 2048, 4096}) {
      run("regular-d3", random_regular(n, 3, rng), 3);
      run("regular-d4", random_regular(n, 4, rng), 4);
      run("regular-d6", random_regular(n, 6, rng), 6);
    }
    for (Vertex n : {256, 512, 1024, 2048}) {
      run("forests-a2", random_forest_union(n, 2, rng), 4);
      run("gnm-m=1.4n", gnm(n, static_cast<std::int64_t>(1.4 * n), rng), 4);
    }
    if (print) t.print();

    if (print) {
      std::cout << "\nround breakdown at n=2048, d=4 (regular):\n";
      const Graph g = random_regular(2048, 4, rng);
      const ListAssignment lists = uniform_lists(2048, 4);
      ColoringRequest req = make_request("sparse", g, lists);
      req.k = 4;
      const ColoringReport r = solve(req, ctx);
      for (const auto& [phase, rounds] : r.ledger.breakdown())
        std::cout << "  " << phase << ": " << rounds << "\n";
    }
  }
  std::cout << "\nShape check: the normalized column stays bounded (polylog),"
               "\nthe d=6 rows sit above d=3/d=4 (poly(d) factor), and the\n"
               "'sweep' phase dominates — matching the paper's"
               " O(d log^2 n)-per-level extension cost.\n";

  // Shard curves (display only, not a pinned baseline series): the same
  // sparse solve under the distributed backend for p shards. Rounds are
  // invariant in p (the superstep count is the LOCAL round count), while
  // messages scale with the boundary the partition induces — the
  // exchange-cost shape a real multi-engine deployment would pay.
  std::cout << "\nexchange cost under the sharded executor"
               " (regular d=4, range partition):\n";
  {
    Table t({"n", "shards", "rounds", "messages", "bytes", "boundary",
             "cut_edges", "same bytes as serial"});
    Rng rng(20260610);
    for (Vertex n : {1024, 4096}) {
      const Graph g = random_regular(n, 4, rng);
      const ListAssignment lists =
          uniform_lists(g.num_vertices(), static_cast<Color>(4));
      ColoringRequest req = make_request("sparse", g, lists);
      req.k = 4;
      RunContext serial_ctx;
      serial_ctx.validate = true;
      ColoringReport serial = solve(req, serial_ctx);
      serial.wall_ms = 0;
      const std::string oracle = to_json(serial, true).dump();
      for (int p : {1, 2, 4, 8}) {
        ShardOptions shard_options;
        shard_options.shards = p;
        // Telemetry off: the report must be the serial bytes; the
        // exchange is still counted on the executor itself.
        shard_options.metrics = false;
        const ShardedExecutor exec(g, shard_options);
        RunContext sharded_ctx;
        sharded_ctx.validate = true;
        sharded_ctx.executor = &exec;
        ColoringReport r = solve(req, sharded_ctx);
        const ExchangeStats x = exec.stats();
        r.wall_ms = 0;
        t.row(n, p, x.rounds, x.messages, x.bytes,
              exec.plan().boundary_vertices, exec.plan().cut_edges,
              to_json(r, true).dump() == oracle ? "yes" : "NO");
      }
    }
    t.print();
  }

  if (!baseline_out.empty()) {
    scol::bench::BaselineWriter writer("bench_main_scaling");
    for (const auto& series : order)
      writer.add_median(series, samples.at(series), "ms",
                        /*higher_is_better=*/false);
    if (!writer.write(baseline_out)) {
      std::cerr << "bench_main_scaling: cannot write baseline '"
                << baseline_out << "'\n";
      return 1;
    }
    std::cout << "\nwrote " << writer.size() << " series for "
              << scol::bench::machine_class() << " to " << baseline_out
              << "\n";
  }
  return 0;
}
