// E4 — Corollary 2.3(2)(3) + Proposition 2.2.
//
// Triangle-free planar graphs: 4-list-colorings; girth >= 6 planar: 3-list-
// colorings, both O(log^3 n) rounds. Prop 2.2 supplies the mad < 2g/(g-2)
// premises, which we verify exactly (flow-based mad) per instance.
#include <iostream>

#include "scol/scol.h"

using namespace scol;

int main() {
  std::cout << "E4 / Corollary 2.3(2,3) + Prop 2.2: girth-restricted planar "
               "coloring\n\n";

  Table t({"family", "n", "girth", "mad(exact)", "Prop2.2 bound", "d",
           "colors", "rounds", "chi(exact small)"});

  Rng rng(20260613);
  const auto run = [&](const char* family, const Graph& g, Vertex girth_lb,
                       Vertex d) {
    const DensestSubgraph mad = maximum_average_degree(g);
    const Vertex gi = girth(g);
    const ListAssignment lists =
        uniform_lists(g.num_vertices(), static_cast<Color>(d));
    const SparseResult r = list_color_sparse(g, d, lists);
    expect_proper_list_coloring(g, *r.coloring, lists);
    const bool small = g.num_vertices() <= 120;
    t.row(family, g.num_vertices(), gi, mad.value(),
          2.0 * girth_lb / (girth_lb - 2.0), d, count_colors(*r.coloring),
          r.ledger.total(),
          small ? std::to_string(chromatic_number(g)) : std::string("-"));
  };

  // Girth 4 (triangle-free): d = 4.
  run("grid 8x8", grid(8, 8), 4, 4);
  run("grid 24x24", grid(24, 24), 4, 4);
  run("grid 48x48", grid(48, 48), 4, 4);
  run("cylinder 6x40", cylinder(6, 40), 4, 4);
  run("subhex+quads 20x20", random_subhex(20, 20, 0.05, rng), 4, 4);

  // Girth 6: d = 3.
  run("hex 10x10", hex_patch(10, 10), 6, 3);
  run("hex 24x24", hex_patch(24, 24), 6, 3);
  run("hex 40x40", hex_patch(40, 40), 6, 3);
  run("subhex 30x30", random_subhex(30, 30, 0.12, rng), 6, 3);

  t.print();

  std::cout << "\nShape check: mad always sits below the Prop 2.2 bound\n"
               "(< 4 at girth 4, < 3 at girth 6), so d = 4 resp. 3 colors\n"
               "suffice — one more color than Grotzsch's sequential 3 for\n"
               "triangle-free planar, which Theorem 2.5 shows is the best\n"
               "any o(n)-round algorithm can do.\n";
  return 0;
}
