// E5 — Corollary 1.4 vs Barenboim–Elkin [4].
//
// Paper claims: arboricity-a graphs (a >= 2) get 2a-list-colorings in
// O(a^4 log^3 n) rounds, improving BE's floor((2+eps)a)+1 colors by at
// least one (and by 3 for small eps when mad is an even integer). Shape:
// our color column = 2a beats BE's palette at every (a, eps).
#include <iostream>

#include "scol/scol.h"

using namespace scol;

int main() {
  std::cout << "E5 / Corollary 1.4: 2a-list-coloring vs Barenboim-Elkin\n\n";

  Table t({"n", "a(exact)", "ours palette 2a", "ours colors", "ours rounds",
           "BE palette e=.1", "BE colors e=.1", "BE rounds e=.1",
           "BE palette e=1", "BE colors e=1", "BE rounds e=1"});

  Rng rng(20260614);
  for (Vertex a : {2, 3, 4, 5}) {
    for (Vertex n : {512, 2048}) {
      const Graph g = random_forest_union(n, a, rng);
      const Vertex a_exact = n <= 2048 ? arboricity_exact(g) : a;
      const ListAssignment lists =
          uniform_lists(n, static_cast<Color>(2 * a));
      const ColoringReport ours = arboricity_list_coloring(g, a, lists);
      expect_proper_list_coloring(g, *ours.coloring, lists);
      const ColoringReport be01 = barenboim_elkin_coloring(g, a, 0.1);
      const ColoringReport be1 = barenboim_elkin_coloring(g, a, 1.0);
      expect_proper_with_at_most(g, *be01.coloring,
                                 barenboim_elkin_palette(a, 0.1));
      expect_proper_with_at_most(g, *be1.coloring,
                                 barenboim_elkin_palette(a, 1.0));
      t.row(n, a_exact, 2 * a, count_colors(*ours.coloring),
            ours.ledger.total(), barenboim_elkin_palette(a, 0.1),
            count_colors(*be01.coloring), be01.ledger.total(),
            barenboim_elkin_palette(a, 1.0), count_colors(*be1.coloring),
            be1.ledger.total());
    }
  }
  t.print();

  std::cout
      << "\nShape check: guaranteed palettes — ours 2a vs BE 2a+1 (eps=.1)\n"
         "and 3a+1 (eps=1): an improvement of >= 1 and >= a+1 colors resp.,\n"
         "paid for with a larger (still polylog) round count. On 2a-regular\n"
         "graphs (mad = 2a, next bench row) the gap vs the generic\n"
         "floor(mad)+1 greedy becomes the paper's 'at least 3 colors'.\n\n";

  // The "even integer mad" case: d-regular graphs with d = 2a.
  Table t2({"graph", "mad", "ours colors (=2a)", "BE e=.1 palette",
            "greedy floor(mad)+1"});
  for (Vertex a : {2, 3}) {
    const Graph g = random_regular(600, 2 * a, rng);
    const ListAssignment lists = uniform_lists(600, static_cast<Color>(2 * a));
    const SparseResult ours = list_color_sparse(g, 2 * a, lists);
    expect_proper_list_coloring(g, *ours.coloring, lists);
    t2.row("regular-" + std::to_string(2 * a), 2 * a,
           count_colors(*ours.coloring), barenboim_elkin_palette(a, 0.1),
           2 * a + 1);
  }
  t2.print();
  return 0;
}
