// E10 — ablations on the design choices DESIGN.md calls out, driven
// through the unified solver API (radius overrides travel as request
// params; stalls come back as kFailed reports instead of exceptions).
//
//  (a) Ball-radius constant c: the proof needs c = 12/ln(6/5) ~ 65.8; how
//      small can the radius get before peeling stalls, and what does the
//      theory-faithful radius cost in rounds?
//  (b) Ruling parameter alpha = 2*rho + 2: larger alpha means fewer, more
//      separated roots but deeper trees (sweep rounds scale with depth
//      bound * (d+1)).
//  (c) Peel-count behaviour at small radii (the O(d^3 log n) general bound
//      becomes visible only when sad/poor vertices survive peels).
//  (d) Randomized vs deterministic round counts (paper §6).
#include <iostream>

#include "scol/scol.h"

using namespace scol;

int main() {
  std::cout << "E10(a): ball radius vs success and cost (grid 32x32, d=4; "
               "regular-4 n=1024)\n\n";
  Rng rng(20260617);
  const Graph grid_g = grid(32, 32);
  const Graph reg = random_regular(1024, 4, rng);

  RunContext ctx;
  ctx.validate = true;

  Table t({"graph", "radius", "outcome", "peels", "rounds"});
  const auto try_radius = [&](const char* name, const Graph& g,
                              Vertex radius) {
    const ListAssignment lists = uniform_lists(g.num_vertices(), 4);
    ColoringRequest req = make_request("sparse", g, lists);
    req.k = 4;
    req.params.set_int("radius", radius);
    const ColoringReport r = solve(req, ctx);
    if (r.ok()) {
      t.row(name, radius, "ok", r.metrics.get_int("peels", -1), r.rounds);
    } else {
      t.row(name, radius, "STALL", "-", "-");
    }
  };
  for (Vertex radius : {1, 2, 3, 6, 12, 48}) try_radius("grid", grid_g, radius);
  try_radius("grid", grid_g, paper_ball_radius(grid_g.num_vertices()));
  for (Vertex radius : {1, 2, 3, 6, 12, 48}) try_radius("regular4", reg, radius);
  try_radius("regular4", reg, paper_ball_radius(reg.num_vertices()));
  t.print();

  std::cout << "\nE10(b): ruling alpha vs forest shape and sweep cost "
               "(regular-4, n=1024, radius=6)\n\n";
  Table t2({"alpha", "roots", "depth bound", "max depth", "ruling rounds"});
  {
    std::vector<char> u(1024, 0);
    Rng rng2(5);
    for (Vertex v = 0; v < 1024; ++v) u[static_cast<std::size_t>(v)] = rng2.chance(0.4);
    for (Vertex alpha : {2, 4, 8, 16, 32}) {
      RoundLedger ledger;
      const RulingForest rf = ruling_forest(reg, u, alpha, &ledger);
      t2.row(alpha, rf.roots.size(), rf.depth_bound, rf.max_depth,
             ledger.total());
    }
  }
  t2.print();

  std::cout << "\nE10(c): exactness fast paths — happy-set wall time with "
               "and without shallow-component short-circuit\n(measured "
               "indirectly: component diameter vs radius)\n\n";
  Table t3({"graph", "radius", "|A|", "|S|", "note"});
  {
    const Graph c = cycle(400);
    for (Vertex radius : {2, 100, 300}) {
      const HappyAnalysis h = compute_happy_set(c, 3, radius);
      t3.row("C_400 (d=3)", radius, h.num_happy, h.num_sad,
             "deg-2 witnesses everywhere");
    }
    const Graph t400 = torus_grid(20, 20);
    for (Vertex radius : {1, 2, 20}) {
      const HappyAnalysis h = compute_happy_set(t400, 4, radius);
      t3.row("torus 20x20 (d=4)", radius, h.num_happy, h.num_sad,
             radius <= 1 ? "balls are stars: all sad" : "C4 visible: happy");
    }
  }
  t3.print();

  std::cout << "\nE10(d): randomized vs deterministic list-coloring (paper "
               "§6 / Question 6.2 remark)\n"
               "randomized (deg+1)-list-coloring runs in O(log n) rounds "
               "w.h.p. — the exponential\nseparation the deterministic "
               "lower bounds of §2 make unavoidable.\n\n";
  Table t4({"n", "randomized rounds", "deterministic rounds (Thm 1.3)",
            "ratio"});
  for (Vertex n : {256, 1024, 4096}) {
    Rng rng3(99);
    const Graph g = random_regular(n, 4, rng3);
    // (deg+1)-lists for the randomized algorithm; d-lists for Thm 1.3.
    const ListAssignment lists5 = uniform_lists(n, 5);
    const ListAssignment lists4 = uniform_lists(n, 4);
    RunContext run_ctx;
    run_ctx.seed = 1;
    run_ctx.validate = true;
    const ColoringReport rr =
        solve(make_request("randomized", g, lists5), run_ctx);
    ColoringRequest det_req = make_request("sparse", g, lists4);
    det_req.k = 4;
    const ColoringReport det = solve(det_req, run_ctx);
    t4.row(n, rr.rounds, det.rounds,
           static_cast<double>(det.rounds) / static_cast<double>(rr.rounds));
  }
  t4.print();

  std::cout << "\nShape check: tiny radii stall exactly where the theory\n"
               "predicts (locally-Gallai views without witnesses); the\n"
               "paper radius always succeeds but pays proportional rounds;\n"
               "alpha trades root separation against tree depth; the\n"
               "randomized variant needs orders of magnitude fewer rounds\n"
               "(with one more list color and randomness).\n";
  return 0;
}
