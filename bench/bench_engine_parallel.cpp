// E11 — parallel LOCAL-engine runtime: serial vs thread-pool round
// throughput on the gen/ random, lattice, and planar families, plus a
// bit-identity audit (the executor contract: parallel output == serial
// output, state for state).
//
// Throughput metric: vertex-rounds per second — one vertex-round is one
// node evaluating its step function once. The engine's round is a pure map
// over vertices, so this is the number the hardware bounds.
//
//   $ ./bench_engine_parallel [n]      (default n = 100000)
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <iostream>

#include "scol/scol.h"

using namespace scol;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// 20 synchronous rounds of BFS-style distance propagation — the canonical
// cheap-state engine program (state = one int32 per vertex).
std::vector<Vertex> run_distance_rounds(const Graph& g, int rounds,
                                        const Executor* exec) {
  std::vector<Vertex> init(static_cast<std::size_t>(g.num_vertices()), -1);
  for (Vertex v = 0; v < g.num_vertices(); v += 997) init[v] = 0;
  return run_synchronous(
      g, std::move(init), rounds,
      [](Vertex, const Vertex& self, NeighborStates<Vertex> nb) {
        Vertex best = self;
        for (std::size_t i = 0; i < nb.size(); ++i) {
          const Vertex d = nb.state(i);
          if (d >= 0 && (best < 0 || d + 1 < best)) best = d + 1;
        }
        return best;
      },
      EngineOptions{exec, nullptr, "distance"});
}

struct Family {
  std::string name;
  Graph graph;
};

}  // namespace

int main(int argc, char** argv) {
  const Vertex n = argc > 1 ? static_cast<Vertex>(std::atol(argv[1])) : 100'000;
  if (n < 3) {
    std::cerr << "usage: bench_engine_parallel [n >= 3]\n";
    return 2;
  }
  const int rounds = 20;
  ThreadPoolExecutor pool;  // hardware concurrency
  std::cout << "engine runtime: serial vs thread pool ("
            << pool.concurrency() << " threads), n ~ " << n << ", "
            << rounds << " rounds/program\n\n";

  Rng rng(20260728);
  const Vertex side = static_cast<Vertex>(std::max(2.0, std::sqrt(double(n))));
  std::vector<Family> families;
  families.push_back({"gnm(n,3n)", gnm(n, 3 * static_cast<std::int64_t>(n), rng)});
  families.push_back({"grid", grid(side, side)});
  families.push_back({"planar-stacked", random_stacked_triangulation(n, rng)});

  Table t({"family", "n", "m", "serial s", "pool s", "Mvr/s serial",
           "Mvr/s pool", "speedup", "identical"});
  for (const Family& f : families) {
    const Graph& g = f.graph;
    // Warm once so first-touch page faults don't bias the serial column.
    run_distance_rounds(g, 1, nullptr);
    const auto t0 = Clock::now();
    const auto serial = run_distance_rounds(g, rounds, nullptr);
    const double serial_s = seconds_since(t0);
    const auto t1 = Clock::now();
    const auto parallel = run_distance_rounds(g, rounds, &pool);
    const double pool_s = seconds_since(t1);
    const double vr = static_cast<double>(g.num_vertices()) * rounds / 1e6;
    t.row(f.name, g.num_vertices(), g.num_edges(), serial_s, pool_s,
          vr / serial_s, vr / pool_s, serial_s / pool_s,
          serial == parallel ? "yes" : "NO");
  }
  t.print();

  // Randomized (deg+1)-list-coloring end to end (propose+resolve rounds on
  // the runtime's per-(vertex, round) Rng streams).
  std::cout << "\nrandomized (deg+1)-list-coloring end to end\n\n";
  Table r({"family", "rounds", "serial s", "pool s", "speedup", "identical"});
  for (const Family& f : families) {
    const Graph& g = f.graph;
    const ListAssignment lists = uniform_lists(
        g.num_vertices(), static_cast<Color>(g.max_degree() + 1));
    Rng rng_serial(7), rng_pool(7);
    const auto t0 = Clock::now();
    const auto serial = randomized_list_coloring(g, lists, rng_serial);
    const double serial_s = seconds_since(t0);
    const auto t1 = Clock::now();
    const auto parallel =
        randomized_list_coloring(g, lists, rng_pool, nullptr, &pool);
    const double pool_s = seconds_since(t1);
    r.row(f.name, serial.rounds, serial_s, pool_s, serial_s / pool_s,
          serial.coloring == parallel.coloring ? "yes" : "NO");
  }
  r.print();
  return 0;
}
