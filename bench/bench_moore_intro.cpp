// E11 — Theorem 4.1 / Corollary 4.2 (Moore bound) and the introduction's
// baseline claims (greedy floor(mad)+1; choice number vs chromatic
// number).
#include <cmath>
#include <iostream>

#include "scol/scol.h"

using namespace scol;

int main() {
  std::cout << "E11 / Theorem 4.1 + Corollary 4.2: girth vs average degree\n\n";
  Table t({"graph", "n", "avg deg", "girth", "Cor4.2 bound", "Thm4.1 check"});
  Rng rng(20260618);
  const auto moore = [&](const char* name, const Graph& g) {
    const double avg = g.average_degree();
    const Vertex gi = girth(g);
    std::string bound = "-", check = "-";
    if (avg > 2.0 && gi > 0) {
      const double b = 4.0 * std::log(static_cast<double>(g.num_vertices())) /
                       std::log(avg - 1.0);
      bound = std::to_string(b).substr(0, 6);
      const double need =
          std::pow(avg - 1.0, (static_cast<double>(gi) - 1.0) / 2.0);
      check = static_cast<double>(g.num_vertices()) + 1e-9 >= need
                  ? "n >= (1+delta)^((g-1)/2) ok"
                  : "VIOLATED";
    }
    t.row(name, g.num_vertices(), avg, gi, bound, check);
  };
  moore("Petersen (3,5)-cage", petersen());
  moore("Heawood (3,6)-cage", heawood());
  moore("McGee (3,7)-cage", mcgee());
  moore("random 3-regular", random_regular(512, 3, rng));
  moore("random 6-regular", random_regular(512, 6, rng));
  moore("gnm n=400 m=700", gnm(400, 700, rng));
  moore("hex 20x20", hex_patch(20, 20));
  t.print();

  std::cout << "\nIntro baseline: greedy needs floor(mad)+1 colors; the main "
               "algorithm needs ceil(mad) (no K_{d+1}):\n\n";
  Table t2({"graph", "mad", "greedy colors", "ours d=ceil(mad)", "ours colors"});
  const auto cmp = [&](const char* name, const Graph& g) {
    const double mad = maximum_average_degree(g).value();
    const Vertex d = std::max<Vertex>(3, mad_ceiling(g));
    if (find_clique(g, d + 1).has_value()) return;
    const Coloring greedy = degeneracy_coloring(g);
    const ListAssignment lists =
        uniform_lists(g.num_vertices(), static_cast<Color>(d));
    const SparseResult ours = list_color_sparse(g, d, lists);
    t2.row(name, mad, count_colors(greedy), d, count_colors(*ours.coloring));
  };
  cmp("random 4-regular n=512", random_regular(512, 4, rng));
  cmp("random 6-regular n=512", random_regular(512, 6, rng));
  cmp("forest-union a=3 n=512", random_forest_union(512, 3, rng));
  cmp("gnm n=512 m=850", gnm(512, 850, rng));
  t2.print();

  std::cout << "\nChoice number vs chromatic number (intro; exact solver):\n";
  Table t3({"graph", "chi", "2-list-colorable?", "3-list-colorable?"});
  {
    const Graph g = complete_bipartite(2, 4);
    const ListAssignment bad = ListAssignment::from_lists(
        {{0, 1}, {2, 3}, {0, 2}, {0, 3}, {1, 2}, {1, 3}});
    const bool two = find_list_coloring(g, bad).has_value();
    bool three = true;
    // Sample several random 3-list-assignments; all must work (ch = 3).
    for (int i = 0; i < 30 && three; ++i) {
      Rng r2(1000 + static_cast<std::uint64_t>(i));
      three = find_list_coloring(g, random_lists(6, 3, 8, r2)).has_value();
    }
    t3.row("K_{2,4}", chromatic_number(g), two ? "yes (?)" : "no (witness)",
           three ? "yes (30 samples)" : "NO");
  }
  {
    const Graph c5 = cycle(5);
    t3.row("C_5", chromatic_number(c5),
           find_list_coloring(c5, uniform_lists(5, 2)).has_value() ? "yes (?)"
                                                                   : "no",
           find_list_coloring(c5, uniform_lists(5, 3)).has_value() ? "yes"
                                                                   : "NO");
  }
  t3.print();
  std::cout << "\nShape check: every generated graph respects the Moore "
               "bound; ch > chi gaps appear exactly where the paper's intro "
               "says.\n";
  return 0;
}
