// E9 — Lemma 3.2 and the ruling forest [3] in isolation.
//
// Paper claims: one extension costs O(d log^2 n) rounds; the ruling forest
// is an (alpha, alpha log n)-ruling forest computed in O(alpha log n)
// rounds. We run a single extension level (everything colored except one
// happy set) and report its cost and the forest's quality metrics.
#include <cmath>
#include <iostream>

#include "scol/scol.h"

using namespace scol;

int main() {
  std::cout << "E9 / Lemma 3.2: one extension level in isolation\n\n";

  Table t({"family", "n", "d", "|A_1|", "ext rounds", "ext/(d*log2^2 n)",
           "ruling", "h-color", "sweep", "ert"});

  Rng rng(20260616);
  const auto run = [&](const char* family, const Graph& g, Vertex d) {
    const Vertex n = g.num_vertices();
    const Vertex rho = paper_ball_radius(n);
    const HappyAnalysis h = compute_happy_set(g, d, rho);
    if (h.num_happy == 0 || h.num_happy == n) {
      // Need a non-trivial partial coloring: fall back to coloring
      // everything but A via the full algorithm when A = V.
    }
    // Color G - A with the exact solver's greedy (any proper coloring of
    // the complement works as Lemma 3.2's input).
    const std::vector<char> all_alive(static_cast<std::size_t>(n), 1);
    const LevelMasks level{all_alive, h.rich, h.happy};
    Coloring colors = empty_coloring(n);
    const ListAssignment lists = uniform_lists(n, static_cast<Color>(d));
    // Greedy list-color the non-happy part (it is (d-1)-degenerate enough
    // on these families for greedy to succeed; validated below).
    {
      std::vector<char> keep(static_cast<std::size_t>(n), 0);
      for (Vertex v = 0; v < n; ++v)
        keep[static_cast<std::size_t>(v)] = !level.happy[static_cast<std::size_t>(v)];
      const InducedSubgraph rest = induce(g, keep);
      ListAssignment rest_lists;
      for (Vertex x = 0; x < rest.graph.num_vertices(); ++x)
        rest_lists.append(
            lists.of(rest.to_original[static_cast<std::size_t>(x)]));
      const auto c = degeneracy_list_coloring(rest.graph, rest_lists);
      if (!c.has_value()) {
        std::cout << family << ": skipped (greedy seed failed)\n";
        return;
      }
      for (Vertex x = 0; x < rest.graph.num_vertices(); ++x)
        colors[static_cast<std::size_t>(
            rest.to_original[static_cast<std::size_t>(x)])] =
            (*c)[static_cast<std::size_t>(x)];
    }
    RoundLedger ledger;
    extend_level_lemma32(g, level, lists, d, rho, colors, ledger);
    expect_proper_list_coloring(g, colors, lists);
    const double l = std::log2(static_cast<double>(n));
    t.row(family, n, d, h.num_happy, ledger.total(),
          static_cast<double>(ledger.total()) / (d * l * l),
          ledger.phase("ruling-forest"), ledger.phase("h-coloring"),
          ledger.phase("sweep"), ledger.phase("ert-balls"));
  };

  for (Vertex n : {256, 1024, 4096}) {
    run("regular-d4", random_regular(n, 4, rng), 4);
    run("planar-tri d6", random_stacked_triangulation(n, rng), 6);
  }
  run("grid 40x40 d4", grid(40, 40), 4);
  t.print();

  std::cout << "\nRuling forest quality ([3]: (alpha, alpha log n), rounds "
               "O(alpha log n)):\n";
  Table t2({"n", "alpha", "roots", "min root dist", "max depth",
            "depth bound", "rounds"});
  for (Vertex n : {512, 2048, 8192}) {
    const Graph g = random_regular(n, 4, rng);
    std::vector<char> u(static_cast<std::size_t>(n), 0);
    for (Vertex v = 0; v < n; ++v) u[static_cast<std::size_t>(v)] = rng.chance(0.3);
    const Vertex alpha = 8;
    RoundLedger ledger;
    const RulingForest rf = ruling_forest(g, u, alpha, &ledger);
    // Min pairwise root distance (sampled for big n).
    Vertex min_dist = -1;
    for (std::size_t i = 0; i < rf.roots.size() && i < 40; ++i) {
      const auto dist = bfs_distances(g, rf.roots[i]);
      for (const Vertex r2 : rf.roots) {
        if (r2 == rf.roots[i]) continue;
        const Vertex dd = dist[static_cast<std::size_t>(r2)];
        if (dd >= 0 && (min_dist < 0 || dd < min_dist)) min_dist = dd;
      }
    }
    t2.row(n, alpha, rf.roots.size(), min_dist, rf.max_depth, rf.depth_bound,
           ledger.total());
  }
  t2.print();

  std::cout << "\nShape check: extension rounds normalized by d log^2 n stay\n"
               "bounded; min root distance >= alpha; depth <= alpha log2 n.\n";
  return 0;
}
