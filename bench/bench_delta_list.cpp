// E6 — Corollary 2.1 and Theorem 6.1.
//
// Delta-list-coloring with unsat certificates (K_{Delta+1} components with
// identical lists) and nice list assignments with per-vertex sizes. The
// baseline column is the generic distributed (Delta+1)-coloring — the
// paper's point is saving that one color.
#include <iostream>

#include "scol/scol.h"

using namespace scol;

namespace {

ListAssignment tight_nice_lists(const Graph& g, Color palette, Rng& rng) {
  ListAssignment out;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    const auto nb = g.neighbors(v);
    bool clique_nbhd = true;
    for (std::size_t i = 0; i < nb.size() && clique_nbhd; ++i)
      for (std::size_t j = i + 1; j < nb.size(); ++j)
        if (!g.has_edge(nb[i], nb[j])) {
          clique_nbhd = false;
          break;
        }
    Vertex size = g.degree(v);
    if (g.degree(v) <= 2 || clique_nbhd) ++size;
    std::vector<Color> all(static_cast<std::size_t>(palette));
    for (Color c = 0; c < palette; ++c) all[static_cast<std::size_t>(c)] = c;
    rng.shuffle(all);
    std::vector<Color> list(all.begin(), all.begin() + size);
    std::sort(list.begin(), list.end());
    out.append(list);
  }
  return out;
}

}  // namespace

int main() {
  std::cout << "E6 / Corollary 2.1: Delta-list-coloring (one color below the "
               "generic Delta+1)\n\n";

  // Note: with per-vertex lists, the number of *distinct* colors across the
  // graph can exceed Delta; the paper's saving is in the list SIZE — every
  // vertex chooses among only Delta colors instead of Delta+1.
  Table t({"family", "n", "Delta", "(D+1)-coloring rounds",
           "list size (=Delta)", "distinct colors", "ours: rounds",
           "outcome"});

  Rng rng(20260615);
  const auto run = [&](const char* family, const Graph& g) {
    const Vertex delta = g.max_degree();
    RoundLedger base_ledger;
    const DegreeColoringResult base =
        distributed_degree_coloring(g, delta, &base_ledger);
    const ListAssignment lists = random_lists(
        g.num_vertices(), static_cast<Color>(delta),
        static_cast<Color>(delta + 5), rng);
    const ColoringReport r = delta_list_coloring(g, lists);
    std::string outcome = "colored";
    Vertex colors = 0;
    if (r.coloring.has_value()) {
      expect_proper_list_coloring(g, *r.coloring, lists);
      colors = count_colors(*r.coloring);
    } else {
      outcome = "UNSAT certificate";
    }
    (void)base;
    t.row(family, g.num_vertices(), delta, base_ledger.total(), delta, colors,
          r.ledger.total(), outcome);
  };

  run("regular-3", random_regular(512, 3, rng));
  run("regular-4", random_regular(512, 4, rng));
  run("regular-6", random_regular(1024, 6, rng));
  run("gnm sparse", gnm(512, 900, rng));
  run("grid 24x24", grid(24, 24));
  t.print();

  std::cout << "\nK_{Delta+1} component handling (the 'or no such coloring "
               "exists' branch):\n";
  Table t2({"instance", "lists", "outcome"});
  {
    const Graph g = disjoint_union(complete(5), grid(8, 8));
    const ColoringReport same =
        delta_list_coloring(g, uniform_lists(g.num_vertices(), 4));
    t2.row("K5 + grid, Delta=4", "identical 4-lists",
           same.status == SolveStatus::kInfeasible ? "UNSAT (K5 certificate)"
                                                   : "colored (?)");
    std::vector<std::vector<Color>> mixed_lists =
        to_lists(uniform_lists(g.num_vertices(), 4));
    mixed_lists[2] = {1, 2, 3, 9};
    const ListAssignment mixed = ListAssignment::from_lists(mixed_lists);
    const ColoringReport ok = delta_list_coloring(g, mixed);
    t2.row("K5 + grid, Delta=4", "one list differs",
           ok.coloring.has_value() ? "colored via SDR matching" : "UNSAT (?)");
  }
  t2.print();

  std::cout << "\nTheorem 6.1 (nice lists, per-vertex sizes):\n";
  Table t3({"family", "n", "Delta", "min |L|", "max |L|", "rounds", "valid"});
  const auto run_nice = [&](const char* family, const Graph& g) {
    const ListAssignment lists =
        tight_nice_lists(g, static_cast<Color>(g.max_degree() + 6), rng);
    const ColoringReport r = nice_list_coloring(g, lists);
    bool valid = true;
    try {
      expect_proper_list_coloring(g, *r.coloring, lists);
    } catch (const std::exception&) {
      valid = false;
    }
    std::size_t lo = lists.of(0).size(), hi = lo;
    for (Vertex v = 0; v < g.num_vertices(); ++v) {
      lo = std::min(lo, lists.of(v).size());
      hi = std::max(hi, lists.of(v).size());
    }
    t3.row(family, g.num_vertices(), g.max_degree(), lo, hi,
           r.ledger.total(), valid ? "yes" : "NO");
  };
  run_nice("gnm sparse", gnm(512, 720, rng));
  run_nice("tree", random_tree(512, rng));
  run_nice("grid 20x20", grid(20, 20));
  run_nice("regular-4", random_regular(512, 4, rng));
  t3.print();

  std::cout << "\nShape check: our Delta-list column never exceeds Delta —\n"
               "one color below the generic Delta+1 — and the unsat branch\n"
               "fires exactly on K_{Delta+1} components with identical "
               "lists.\n";
  return 0;
}
