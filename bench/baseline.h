// Shared bench baseline writer: the `--baseline-out` mode of bench_perf,
// bench_campaign, bench_io, and bench_main_scaling.
//
// A baseline file (BENCH_*.json at the repo root) pins a bench's series
// medians per MACHINE CLASS — "<arch>-<cores>c-<build>", e.g.
// "x86_64-8c-release" — so numbers from different hardware or build types
// never get compared to each other. tools/bench_compare.py consumes these
// files: it diffs a fresh run against the checked-in class, fails on
// median regressions past the threshold, and refreshes the baseline on
// improvement (docs/BENCHMARKS.md is the operating manual).
//
// Schema ("scol-bench-baseline/v1"):
//   {
//     "schema": "scol-bench-baseline/v1",
//     "bench": "bench_io",
//     "machine_classes": {
//       "x86_64-8c-release": {
//         "arch": "x86_64", "cores": 8, "build": "release",
//         "series": {
//           "parse/dimacs/MBps": {"value": 245.1, "unit": "MB/s",
//                                  "higher_is_better": true, "reps": 3}
//         }
//       }
//     }
//   }
//
// One program writes exactly one machine class (its own); the comparator's
// `merge` mode folds runs from several benches/machines into one file.
#pragma once

#include <algorithm>
#include <cctype>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "scol/api/json.h"
#include "scol/util/check.h"

namespace scol::bench {

inline std::string arch_name() {
#if defined(__x86_64__) || defined(_M_X64)
  return "x86_64";
#elif defined(__aarch64__) || defined(_M_ARM64)
  return "arm64";
#else
  return "unknown";
#endif
}

inline std::string build_type() {
#if defined(SCOL_BUILD_TYPE)
  std::string b = SCOL_BUILD_TYPE;
#elif defined(NDEBUG)
  std::string b = "Release";
#else
  std::string b = "Debug";
#endif
  std::transform(b.begin(), b.end(), b.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return b.empty() ? "unknown" : b;
}

inline int core_count() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

/// The key baselines are pinned under: "<arch>-<cores>c-<build>".
inline std::string machine_class() {
  return arch_name() + "-" + std::to_string(core_count()) + "c-" +
         build_type();
}

/// Median of a sample (by value; the callers keep their raw reps).
inline double median(std::vector<double> v) {
  SCOL_REQUIRE(!v.empty(), + "median of an empty sample");
  std::sort(v.begin(), v.end());
  const std::size_t h = v.size() / 2;
  return v.size() % 2 == 1 ? v[h] : 0.5 * (v[h - 1] + v[h]);
}

/// Collects (series -> median value) rows and writes the baseline JSON.
class BaselineWriter {
 public:
  explicit BaselineWriter(std::string bench_name)
      : bench_name_(std::move(bench_name)) {}

  /// Adds one series. `higher_is_better` tells the comparator which
  /// direction is a regression (false for times, true for throughput).
  void add(const std::string& series, double value, const std::string& unit,
           bool higher_is_better, int reps) {
    rows_.push_back({series, unit, value, higher_is_better, reps});
  }

  /// Median-of-reps convenience: records median(samples).
  void add_median(const std::string& series, std::vector<double> samples,
                  const std::string& unit, bool higher_is_better) {
    const int reps = static_cast<int>(samples.size());
    add(series, median(std::move(samples)), unit, higher_is_better, reps);
  }

  std::size_t size() const { return rows_.size(); }

  Json to_baseline_json() const {
    Json series = Json::object();
    for (const auto& r : rows_) {
      Json entry = Json::object();
      entry.set("value", Json::real(r.value));
      entry.set("unit", Json::str(r.unit));
      entry.set("higher_is_better", Json::boolean(r.higher_is_better));
      entry.set("reps", Json::integer(r.reps));
      series.set(r.name, std::move(entry));
    }
    Json cls = Json::object();
    cls.set("arch", Json::str(arch_name()));
    cls.set("cores", Json::integer(core_count()));
    cls.set("build", Json::str(build_type()));
    cls.set("series", std::move(series));
    Json classes = Json::object();
    classes.set(machine_class(), std::move(cls));
    Json out = Json::object();
    out.set("schema", Json::str("scol-bench-baseline/v1"));
    out.set("bench", Json::str(bench_name_));
    out.set("machine_classes", std::move(classes));
    return out;
  }

  /// Writes the baseline file (pretty JSON — these are reviewed in PRs).
  /// Returns false (with a message on stderr) if the file cannot be
  /// written.
  bool write(const std::string& path) const {
    std::ofstream out(path);
    if (!out) return false;
    out << to_baseline_json().dump(2) << "\n";
    return static_cast<bool>(out);
  }

 private:
  struct Row {
    std::string name;
    std::string unit;
    double value = 0.0;
    bool higher_is_better = false;
    int reps = 1;
  };
  std::string bench_name_;
  std::vector<Row> rows_;
};

/// Extracts `--flag=value` from argv (removing it) and returns the value,
/// or empty if absent. Lets the reporting benches keep their positional
/// args while gaining baseline flags.
inline std::string take_flag(int& argc, char** argv,
                             const std::string& flag) {
  const std::string prefix = flag + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) {
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      return arg.substr(prefix.size());
    }
  }
  return "";
}

}  // namespace scol::bench
