// B14 — graph-file ingestion throughput: parse MB/s per format on a
// generated sparse instance, write/read round-trip integrity, and the
// structure-probe cost that campaign probe filtering pays once per
// instance.
//
// Metric: MB/s of text parsed (the readers are single-pass and
// line-buffered, so throughput is tokenizer-bound), file-backed MB/s for
// the streaming and mmap chunk-parallel readers (edge list and METIS,
// the formats the parallel reader covers), and probe wall time split by
// component cost class (linear peel/BFS vs bounded planarity/flow vs the
// sampled mode web-scale campaigns run under a probe budget).
//
//   $ ./bench_io [n]      (default n = 20000 vertices, ~1.4n edges)
//   $ ./bench_io --baseline-out=BENCH_io.json [--baseline-reps=N]
//
// The baseline mode repeats the parse and probe timings N times (default
// 3) and pins per-format parse MB/s plus probe wall times as median
// series; see bench/baseline.h and docs/BENCHMARKS.md.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "baseline.h"
#include "scol/gen/random.h"
#include "scol/io/io.h"
#include "scol/io/probe.h"
#include "scol/util/rng.h"
#include "scol/util/table.h"

using namespace scol;

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  const std::string baseline_out =
      scol::bench::take_flag(argc, argv, "--baseline-out");
  const std::string baseline_reps =
      scol::bench::take_flag(argc, argv, "--baseline-reps");
  const int reps =
      baseline_out.empty()
          ? 1
          : (baseline_reps.empty()
                 ? 3
                 : std::max(1, std::atoi(baseline_reps.c_str())));
  Vertex n = 20000;
  if (argc > 1) {
    n = static_cast<Vertex>(std::atoi(argv[1]));
    if (n < 10) {
      std::cerr << "usage: bench_io [n >= 10]\n";
      return 2;
    }
  }
  // Two overlaid spanning trees: ~2n edges, connected, no isolated
  // vertices (the edge-list format cannot represent those).
  Rng rng(42);
  const Graph g = random_forest_union(n, 2, rng);
  std::cout << "bench_io: " << describe(g) << "\n\n";

  // Raw samples per baseline series, filled once per rep; only the
  // first rep prints (the console report is identical across reps).
  std::map<std::string, std::vector<double>> samples;
  for (int rep = 0; rep < reps; ++rep) {
    const bool print = rep == 0;
    Table table({"format", "bytes", "write_ms", "parse_ms", "parse_MB/s",
                 "round_trip"});
    for (const GraphFormat format :
         {GraphFormat::kDimacs, GraphFormat::kMetis,
          GraphFormat::kMatrixMarket, GraphFormat::kEdgeList}) {
      std::ostringstream os;
      const auto w0 = Clock::now();
      write_graph(os, g, format);
      const double write_ms = ms_since(w0);
      const std::string text = os.str();

      std::istringstream in(text);
      const auto p0 = Clock::now();
      const ReadResult r = read_graph(in, format, "bench");
      const double parse_ms = ms_since(p0);

      const bool identical = r.graph.num_vertices() == g.num_vertices() &&
                             r.graph.edges() == g.edges();
      const double mbps =
          static_cast<double>(text.size()) / 1e6 / (parse_ms / 1e3);
      samples[std::string("parse/") + format_name(format) + "/MBps"]
          .push_back(mbps);
      if (print)
        table.row(format_name(format), text.size(), write_ms, parse_ms,
                  mbps, identical ? "yes" : "NO");
      if (!identical) {
        std::cerr << "bench_io: round trip diverged for "
                  << format_name(format) << "\n";
        return 1;
      }
    }
    if (print) table.print(std::cout);

    // The file-backed readers on the formats the mmap parallel reader
    // covers: threads=1 is the streaming line reader, threads=8 the
    // mmap chunk-parallel path (both produce bit-identical graphs; the
    // differential tests pin that, here it is just re-checked).
    Table ptable({"format", "threads", "parse_ms", "parse_MB/s"});
    for (const GraphFormat format :
         {GraphFormat::kMetis, GraphFormat::kEdgeList}) {
      const std::string path =
          (std::filesystem::temp_directory_path() /
           (std::string("bench_io_") + format_name(format) + ".tmp"))
              .string();
      {
        std::ofstream out(path, std::ios::binary);
        write_graph(out, g, format);
      }
      const double bytes =
          static_cast<double>(std::filesystem::file_size(path));
      for (const int threads : {1, 8}) {
        ReadOptions options;
        options.threads = threads;
        const auto f0 = Clock::now();
        const ReadResult fr = read_graph_file(path, format, options);
        const double file_ms = ms_since(f0);
        if (fr.graph.edges() != g.edges()) {
          std::cerr << "bench_io: file round trip diverged for "
                    << format_name(format) << " threads=" << threads
                    << "\n";
          return 1;
        }
        const double fmbps = bytes / 1e6 / (file_ms / 1e3);
        samples[std::string("parse/") + format_name(format) +
                (threads == 1 ? "/file/MBps" : "/par8/MBps")]
            .push_back(fmbps);
        if (print)
          ptable.row(format_name(format), threads, file_ms, fmbps);
      }
      std::remove(path.c_str());
    }
    if (print) {
      std::cout << "\nfile-backed readers (streaming vs mmap parallel):\n";
      ptable.print(std::cout);
    }

    // The probe, as the campaign pays it: once per instance. The linear
    // components always run; planarity and exact mad/arboricity only
    // below their limits (this instance is above the defaults).
    const auto t0 = Clock::now();
    const GraphProbe probe = probe_graph(g);
    const double probe_ms = ms_since(t0);
    samples["probe/default/ms"].push_back(probe_ms);
    if (print)
      std::cout << "\nprobe (" << probe_ms << " ms): " << describe(probe)
                << "\n";

    // The bounded components at full strength, on a size they are sized
    // for (the flow-based mad/arboricity and Demoucron planarity are the
    // reason the limits exist).
    const Vertex deep_n = std::min<Vertex>(n, 2000);
    Rng deep_rng(43);
    const Graph h = random_forest_union(deep_n, 2, deep_rng);
    ProbeOptions exhaustive;
    exhaustive.planarity_limit = deep_n + 1;
    exhaustive.exact_mad_limit = deep_n + 1;
    const auto t1 = Clock::now();
    const GraphProbe deep = probe_graph(h, exhaustive);
    const double deep_ms = ms_since(t1);
    samples["probe/exhaustive/ms"].push_back(deep_ms);
    if (print)
      std::cout << "probe with exact mad/arboricity/planarity on n="
                << deep_n << " (" << deep_ms << " ms): " << describe(deep)
                << "\n";

    // The sampled probe: what probe_graph costs on an instance far past
    // the budget, where campaigns fall back to certified-but-weaker
    // facts instead of linear scans (docs/DESIGN.md, web-scale
    // ingestion).
    ProbeOptions sampled_options;
    sampled_options.budget = 4096;  // n + m is far above: sampled mode
    const auto t2 = Clock::now();
    const GraphProbe shallow = probe_graph(g, sampled_options);
    const double shallow_ms = ms_since(t2);
    samples["probe/sampled/ms"].push_back(shallow_ms);
    if (print)
      std::cout << "probe sampled at budget=4096 (" << shallow_ms
                << " ms): " << describe(shallow) << "\n";
  }

  if (!baseline_out.empty()) {
    scol::bench::BaselineWriter writer("bench_io");
    for (auto& [series, values] : samples) {
      // Throughput series count up; time series count down.
      const bool higher = series.rfind("parse/", 0) == 0;
      writer.add_median(series, values, higher ? "MB/s" : "ms", higher);
    }
    if (!writer.write(baseline_out)) {
      std::cerr << "bench_io: cannot write baseline '" << baseline_out
                << "'\n";
      return 1;
    }
    std::cout << "\nwrote " << writer.size() << " series for "
              << scol::bench::machine_class() << " to " << baseline_out
              << "\n";
  }
  return 0;
}
