// B14 — graph-file ingestion throughput: parse MB/s per format on a
// generated sparse instance, write/read round-trip integrity, and the
// structure-probe cost that campaign probe filtering pays once per
// instance.
//
// Metric: MB/s of text parsed (the readers are single-pass and
// line-buffered, so throughput is tokenizer-bound) and probe wall time
// split by component cost class (linear peel/BFS vs bounded
// planarity/flow).
//
//   $ ./bench_io [n]      (default n = 20000 vertices, ~1.4n edges)
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

#include "scol/gen/random.h"
#include "scol/io/io.h"
#include "scol/io/probe.h"
#include "scol/util/rng.h"
#include "scol/util/table.h"

using namespace scol;

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  Vertex n = 20000;
  if (argc > 1) {
    n = static_cast<Vertex>(std::atoi(argv[1]));
    if (n < 10) {
      std::cerr << "usage: bench_io [n >= 10]\n";
      return 2;
    }
  }
  // Two overlaid spanning trees: ~2n edges, connected, no isolated
  // vertices (the edge-list format cannot represent those).
  Rng rng(42);
  const Graph g = random_forest_union(n, 2, rng);
  std::cout << "bench_io: " << describe(g) << "\n\n";

  Table table({"format", "bytes", "write_ms", "parse_ms", "parse_MB/s",
               "round_trip"});
  for (const GraphFormat format :
       {GraphFormat::kDimacs, GraphFormat::kMetis,
        GraphFormat::kMatrixMarket, GraphFormat::kEdgeList}) {
    std::ostringstream os;
    const auto w0 = Clock::now();
    write_graph(os, g, format);
    const double write_ms = ms_since(w0);
    const std::string text = os.str();

    std::istringstream in(text);
    const auto p0 = Clock::now();
    const ReadResult r = read_graph(in, format, "bench");
    const double parse_ms = ms_since(p0);

    const bool identical = r.graph.num_vertices() == g.num_vertices() &&
                           r.graph.edges() == g.edges();
    table.row(format_name(format), text.size(), write_ms, parse_ms,
              static_cast<double>(text.size()) / 1e6 / (parse_ms / 1e3),
              identical ? "yes" : "NO");
    if (!identical) {
      std::cerr << "bench_io: round trip diverged for "
                << format_name(format) << "\n";
      return 1;
    }
  }
  table.print(std::cout);

  // The probe, as the campaign pays it: once per instance. The linear
  // components always run; planarity and exact mad/arboricity only
  // below their limits (this instance is above the defaults).
  const auto t0 = Clock::now();
  const GraphProbe probe = probe_graph(g);
  const double probe_ms = ms_since(t0);
  std::cout << "\nprobe (" << probe_ms << " ms): " << describe(probe)
            << "\n";

  // The bounded components at full strength, on a size they are sized
  // for (the flow-based mad/arboricity and Demoucron planarity are the
  // reason the limits exist).
  const Vertex deep_n = std::min<Vertex>(n, 2000);
  Rng deep_rng(43);
  const Graph h = random_forest_union(deep_n, 2, deep_rng);
  ProbeOptions exhaustive;
  exhaustive.planarity_limit = deep_n + 1;
  exhaustive.exact_mad_limit = deep_n + 1;
  const auto t1 = Clock::now();
  const GraphProbe deep = probe_graph(h, exhaustive);
  const double deep_ms = ms_since(t1);
  std::cout << "probe with exact mad/arboricity/planarity on n=" << deep_n
            << " (" << deep_ms << " ms): " << describe(deep) << "\n";
  return 0;
}
