// B13 — campaign runner throughput: job-level scaling of a
// scenario x algorithm x seed grid over the job executor, the
// graph-cache amortization (N algorithms per generated instance), and a
// bit-identity audit of the JSONL stream across executors and shards.
//
// Metric: jobs per second — one job is one scol::solve() plus its oracle
// checks and JSONL serialization, the unit the campaign subsystem
// schedules.
//
//   $ ./bench_campaign [seeds]      (default seeds = 6)
//   $ ./bench_campaign --baseline-out=BENCH_campaign.json [--baseline-reps=N]
//
// The baseline mode re-times the serial sweep and the summary-only fast
// path (empty sink — no JSONL serialization) N times (default 3) and
// pins the median jobs/s per series; see bench/baseline.h and
// docs/BENCHMARKS.md.
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "baseline.h"
#include "scol/scol.h"

using namespace scol;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

CampaignSpec bench_spec(int seeds) {
  CampaignSpec spec;
  spec.scenarios = {"planar:n=300", "regular:n=256,d=4",
                    "grid:rows=16,cols=16", "gnm:n=256,m=384"};
  spec.algorithms = {"greedy", "degeneracy", "dsatur", "sparse",
                     "randomized"};
  spec.seeds = seeds;
  return spec;
}

struct RunStats {
  double seconds = 0.0;
  std::size_t bytes = 0;
  std::vector<std::string> lines;
  CampaignResult result;
};

RunStats run_once(const CampaignSpec& spec, const Executor* executor,
                  bool keep_lines) {
  CampaignOptions options;
  options.executor = executor;
  RunStats stats;
  const auto t0 = Clock::now();
  stats.result = run_campaign(spec, options, [&](const std::string& line) {
    stats.bytes += line.size() + 1;
    if (keep_lines) stats.lines.push_back(line);
  });
  stats.seconds = seconds_since(t0);
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string baseline_out =
      scol::bench::take_flag(argc, argv, "--baseline-out");
  const std::string baseline_reps =
      scol::bench::take_flag(argc, argv, "--baseline-reps");
  const int seeds = argc > 1 ? std::atoi(argv[1]) : 6;
  if (seeds < 1) {
    std::cerr << "usage: bench_campaign [seeds >= 1]\n";
    return 2;
  }
  const CampaignSpec spec = bench_spec(seeds);
  const std::size_t jobs = enumerate_campaign(spec).size();
  std::cout << "campaign grid: " << spec.scenarios.size()
            << " scenarios x " << spec.algorithms.size() << " algorithms x "
            << seeds << " seeds = " << jobs << " jobs\n\n";

  // Graph-cache amortization: what the grid pays for generation (once
  // per instance) vs what per-job generation would cost.
  {
    const auto t0 = Clock::now();
    std::size_t instances = 0;
    for (const auto& scenario : spec.scenarios) {
      for (int t = 0; t < seeds; ++t, ++instances) {
        Rng rng(spec.seed + static_cast<std::uint64_t>(t));
        const Graph g = build_scenario(scenario, rng);
        (void)g;
      }
    }
    const double gen = seconds_since(t0);
    std::cout << "generation: " << instances << " instances in " << gen * 1e3
              << " ms; cache saves "
              << gen * 1e3 *
                     static_cast<double>(jobs - instances) /
                     static_cast<double>(instances)
              << " ms vs per-job generation\n\n";
  }

  const RunStats serial = run_once(spec, nullptr, /*keep_lines=*/true);
  std::cout << "jobs=1 (serial): " << serial.seconds * 1e3 << " ms, "
            << static_cast<double>(jobs) / serial.seconds << " jobs/s, "
            << serial.bytes << " JSONL bytes, "
            << serial.result.oracle_violations << " oracle violations\n";

  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  for (int threads : {2, 4, hw}) {
    if (threads < 2 || (threads == hw && (hw == 2 || hw == 4))) continue;
    ThreadPoolExecutor pool(threads, /*grain=*/1);
    const RunStats parallel = run_once(spec, &pool, /*keep_lines=*/true);
    const bool identical = parallel.lines == serial.lines;
    std::cout << "jobs=" << threads << ":        " << parallel.seconds * 1e3
              << " ms, " << static_cast<double>(jobs) / parallel.seconds
              << " jobs/s, speedup x"
              << serial.seconds / parallel.seconds
              << (identical ? " [stream identical]"
                            : " [STREAM MISMATCH]")
              << "\n";
    if (!identical) return 1;
  }

  if (!baseline_out.empty()) {
    const int reps =
        baseline_reps.empty() ? 3 : std::max(1, std::atoi(baseline_reps.c_str()));
    std::vector<double> serial_jps, summary_jps;
    for (int rep = 0; rep < reps; ++rep) {
      const RunStats full = run_once(spec, nullptr, /*keep_lines=*/false);
      serial_jps.push_back(static_cast<double>(jobs) / full.seconds);
      // Summary-only fast path: an empty sink skips per-job JSONL
      // serialization entirely (oracle + summary still run).
      CampaignOptions options;
      const auto t0 = Clock::now();
      const CampaignResult r = run_campaign(spec, options, CampaignSink());
      const double secs = seconds_since(t0);
      if (r.jobs != jobs) {
        std::cerr << "bench_campaign: summary-only job count mismatch\n";
        return 1;
      }
      summary_jps.push_back(static_cast<double>(jobs) / secs);
    }
    scol::bench::BaselineWriter writer("bench_campaign");
    writer.add_median("serial/jobs_per_s", serial_jps, "jobs/s",
                      /*higher_is_better=*/true);
    writer.add_median("summary_only/jobs_per_s", summary_jps, "jobs/s",
                      /*higher_is_better=*/true);
    if (!writer.write(baseline_out)) {
      std::cerr << "bench_campaign: cannot write baseline '" << baseline_out
                << "'\n";
      return 1;
    }
    std::cout << "\nwrote " << writer.size() << " series for "
              << scol::bench::machine_class() << " to " << baseline_out
              << "\n";
  }
  return 0;
}
