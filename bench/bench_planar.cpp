// E3 — Corollary 2.3(1) vs Goldberg–Plotkin–Shannon [17].
//
// Paper claims: planar graphs get 6-list-colorings in O(log^3 n) rounds;
// GPS gets 7 colors in O(log n) rounds. Shape to reproduce: ours always
// uses <= 6 colors (one fewer than GPS's palette), at a polylog — but
// larger — round count; GPS rounds grow ~log n.
#include <cmath>
#include <iostream>

#include "scol/scol.h"

using namespace scol;

int main() {
  std::cout << "E3 / Corollary 2.3(1): planar 6-list-coloring vs GPS "
               "7-coloring vs sequential greedy\n\n";

  Table t({"family", "n", "greedy colors", "GPS colors", "GPS rounds",
           "GPS rounds/log2(n)", "ours colors", "ours rounds",
           "ours rounds/log2^3(n)"});

  Rng rng(20260612);
  const auto run = [&](const char* family, const Graph& g) {
    const double l = std::log2(static_cast<double>(g.num_vertices()));
    const Coloring greedy = degeneracy_coloring(g);
    const ColoringReport gps = gps_planar_seven_coloring(g);
    const ListAssignment lists = uniform_lists(g.num_vertices(), 6);
    const ColoringReport ours = planar_six_list_coloring(g, lists);
    expect_proper(g, greedy);
    expect_proper_with_at_most(g, *gps.coloring, 7);
    expect_proper_list_coloring(g, *ours.coloring, lists);
    t.row(family, g.num_vertices(), count_colors(greedy),
          count_colors(*gps.coloring), gps.ledger.total(),
          static_cast<double>(gps.ledger.total()) / l,
          count_colors(*ours.coloring), ours.ledger.total(),
          static_cast<double>(ours.ledger.total()) / (l * l * l));
  };

  for (Vertex n : {256, 512, 1024, 2048, 4096}) {
    run("stacked-triangulation", random_stacked_triangulation(n, rng));
  }
  for (Vertex s : {16, 24, 32, 48}) {
    run("grid+diagonals", grid_random_diagonals(s, s, rng));
  }
  for (Vertex s : {20, 32, 48, 64}) {
    run("grid", grid(s, s));
  }
  t.print();

  std::cout
      << "\nShape check: ours <= 6 colors on every row (GPS's palette is 7;\n"
         "on easy instances both may use fewer). GPS's normalized rounds\n"
         "stay ~constant (O(log n)); ours' rounds/log^3 n stay bounded —\n"
         "the paper's trade: one fewer color for two more log factors.\n"
         "With genuine per-vertex lists GPS does not apply at all; ours "
         "does.\n";
  return 0;
}
