// B15 — serving-layer throughput: requests/sec through Server's batch
// pipeline (parse → cache resolution → solve/dedup → envelope) driven
// in-process over string streams, so the numbers isolate the serve path
// from socket and scheduler noise.
//
// Three series bracket the cache's value:
//   serve/cold/rps   every request distinct — all misses, pure solve+
//                    envelope cost (the no-cache floor);
//   serve/hot/rps    the same mix replayed on a warm server — all
//                    report-cache hits, splice-only responses;
//   serve/zipf/rps   a theta=1.0 Zipf mix over the universe — the
//                    realistic blend the CI load job drives.
//
//   $ ./bench_serve [requests]   (default 2000 per series)
//   $ ./bench_serve --baseline-out=BENCH_serve.json [--baseline-reps=N]
//
// Baseline mode repeats each series N times (default 3) and pins median
// rps per machine class; see bench/baseline.h and docs/BENCHMARKS.md.
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "baseline.h"
#include "scol/serve/server.h"
#include "scol/serve/zipf.h"
#include "scol/util/rng.h"

using namespace scol;

namespace {

using Clock = std::chrono::steady_clock;

// Generator-only universe (no file dependencies): 6 scenarios x 4
// precondition-free algorithms x 2 seeds = 48 distinct cache keys.
std::vector<std::string> request_universe() {
  const std::vector<std::string> gens = {
      "grid:rows=10,cols=10", "cylinder:rows=8,cols=8", "petersen",
      "regular:n=128,d=4",    "planar:n=120",           "tree:n=150",
  };
  const std::vector<std::string> algos = {"greedy", "dsatur", "degeneracy",
                                          "randomized"};
  std::vector<std::string> keys;
  for (const auto& g : gens)
    for (const auto& a : algos)
      for (int seed = 1; seed <= 2; ++seed)
        keys.push_back("{\"algo\":\"" + a + "\",\"gen\":\"" + g +
                       "\",\"seed\":" + std::to_string(seed) + "}");
  return keys;
}

/// Feeds `lines` through a server stream and returns requests/sec.
double drive(Server& server, const std::vector<std::string>& lines) {
  std::stringstream in, out;
  for (const auto& line : lines) in << line << "\n";
  const auto t0 = Clock::now();
  server.serve_stream(in, out);
  const double secs =
      std::chrono::duration<double>(Clock::now() - t0).count();
  // Sanity: every request must have been answered ok (a bench over
  // error envelopes would be measuring string formatting).
  std::string reply;
  std::size_t answered = 0;
  while (std::getline(out, reply)) {
    if (reply.find("\"ok\":true") == std::string::npos) {
      std::cerr << "bench_serve: request failed: " << reply << "\n";
      std::exit(1);
    }
    ++answered;
  }
  if (answered != lines.size()) {
    std::cerr << "bench_serve: " << answered << " replies for "
              << lines.size() << " requests\n";
    std::exit(1);
  }
  return static_cast<double>(lines.size()) / secs;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string baseline_out =
      scol::bench::take_flag(argc, argv, "--baseline-out");
  const std::string baseline_reps =
      scol::bench::take_flag(argc, argv, "--baseline-reps");
  const int reps =
      baseline_out.empty()
          ? 1
          : (baseline_reps.empty()
                 ? 3
                 : std::max(1, std::atoi(baseline_reps.c_str())));
  std::size_t requests = 2000;
  if (argc > 1) requests = static_cast<std::size_t>(std::atoll(argv[1]));

  const std::vector<std::string> universe = request_universe();

  // Cold: `requests` distinct keys — vary the seed so every request is
  // a genuine graph-build + solve (capacity 0 = unbounded, no eviction
  // noise).
  std::vector<std::string> cold;
  cold.reserve(requests);
  for (std::size_t i = 0; i < requests; ++i)
    cold.push_back(
        "{\"algo\":\"greedy\",\"gen\":\"grid:rows=10,cols=10\",\"seed\":" +
        std::to_string(i + 1) + "}");

  // Zipf mix: fixed draw sequence (deterministic across reps).
  ZipfSampler zipf(universe.size(), 1.0);
  Rng rng(42);
  std::vector<std::string> mix;
  mix.reserve(requests);
  for (std::size_t i = 0; i < requests; ++i)
    mix.push_back(universe[zipf.draw(rng)]);

  std::vector<double> cold_rps, hot_rps, zipf_rps;
  for (int rep = 0; rep < reps; ++rep) {
    ServerOptions options;
    options.graph_cache_capacity = 0;
    options.report_cache_capacity = 0;
    {
      Server server(options);
      cold_rps.push_back(drive(server, cold));
    }
    {
      Server server(options);
      drive(server, mix);                     // warm every key in the mix
      hot_rps.push_back(drive(server, mix));  // pure report-cache hits
    }
    {
      Server server(options);
      zipf_rps.push_back(drive(server, mix));
    }
  }

  std::cout << "bench_serve: " << requests << " requests/series, "
            << universe.size() << "-key universe\n"
            << "  cold (all miss)   "
            << scol::bench::median(cold_rps) << " rps\n"
            << "  hot (all hit)     "
            << scol::bench::median(hot_rps) << " rps\n"
            << "  zipf theta=1.0    "
            << scol::bench::median(zipf_rps) << " rps\n";

  if (!baseline_out.empty()) {
    scol::bench::BaselineWriter writer("bench_serve");
    writer.add_median("serve/cold/rps", cold_rps, "req/s", true);
    writer.add_median("serve/hot/rps", hot_rps, "req/s", true);
    writer.add_median("serve/zipf/rps", zipf_rps, "req/s", true);
    if (!writer.write(baseline_out)) {
      std::cerr << "bench_serve: cannot write '" << baseline_out << "'\n";
      return 1;
    }
    std::cout << "baseline written to " << baseline_out << " ("
              << scol::bench::machine_class() << ")\n";
  }
  return 0;
}
