// E2 — Lemma 3.1 and Proposition 4.4.
//
// Lemma 3.1: |A| >= n/(3d)^3 in general, and |A| >= n/(12d+1) when no
// vertex is poor. Prop. 4.4: at least |S|/12 vertices of G[S] have degree
// <= d-1 in G[S]. We measure the actual happy fraction at the paper radius
// (and at small radii, where sad vertices actually appear) against the
// guaranteed bounds.
#include <iostream>

#include "scol/scol.h"

using namespace scol;

int main() {
  std::cout << "E2 / Lemma 3.1 + Prop 4.4: happy-set sizes vs guarantees\n\n";

  Table t({"family", "n", "d", "radius", "|R|", "poor", "|A|", "|S|",
           "|A|/n", "bound(3d)^-3", "bound(12d+1)^-1", "P4.4 lowdeg(S)",
           "P4.4 bound |S|/12"});

  Rng rng(20260611);
  const auto run = [&](const char* family, const Graph& g, Vertex d,
                       Vertex radius) {
    const HappyAnalysis h = compute_happy_set(g, d, radius);
    const double n = static_cast<double>(g.num_vertices());
    // Prop 4.4 quantities.
    const auto sad = h.sad_mask();
    const InducedSubgraph gs = induce(g, sad);
    Vertex lowdeg = 0;
    for (Vertex x = 0; x < gs.graph.num_vertices(); ++x)
      if (gs.graph.degree(x) <= d - 1) ++lowdeg;
    t.row(family, g.num_vertices(), d, radius, h.num_rich, h.num_poor,
          h.num_happy, h.num_sad, static_cast<double>(h.num_happy) / n,
          n / ((3.0 * d) * (3.0 * d) * (3.0 * d)),
          h.num_poor == 0 ? n / (12.0 * d + 1) : 0.0, lowdeg,
          static_cast<double>(h.num_sad) / 12.0);
  };

  for (Vertex n : {512, 2048}) {
    const Graph r3 = random_regular(n, 3, rng);
    run("regular-d3", r3, 3, paper_ball_radius(n));
    const Graph r6 = random_regular(n, 6, rng);
    run("regular-d6", r6, 6, paper_ball_radius(n));
    const Graph tri = random_stacked_triangulation(n, rng);
    run("planar-tri (d=6)", tri, 6, paper_ball_radius(n));
    const Graph fu = random_forest_union(n, 2, rng);
    run("forests-a2 (d=4)", fu, 4, paper_ball_radius(n));
  }
  run("grid 40x40 (d=4)", grid(40, 40), 4, paper_ball_radius(1600));
  run("hex 30x30 (d=3)", hex_patch(30, 30), 3, paper_ball_radius(900));

  std::cout << "paper radius (all guarantees must hold):\n";
  t.print();

  // Small radii: the sad machinery becomes visible (Lemma 3.1's bound is
  // no longer promised, but Prop 4.4-style structure can be observed).
  Table t2({"family", "n", "d", "radius", "|A|", "|S|", "|A|/n",
            "P4.4 lowdeg(S)", "|S|/12"});
  Rng rng2(77);
  for (Vertex radius : {1, 2, 4}) {
    const Graph g = random_regular(1024, 3, rng2);
    const HappyAnalysis h = compute_happy_set(g, 3, radius);
    const auto sad = h.sad_mask();
    const InducedSubgraph gs = induce(g, sad);
    Vertex lowdeg = 0;
    for (Vertex x = 0; x < gs.graph.num_vertices(); ++x)
      if (gs.graph.degree(x) <= 2) ++lowdeg;
    t2.row("regular-d3", 1024, 3, radius, h.num_happy, h.num_sad,
           static_cast<double>(h.num_happy) / 1024.0, lowdeg,
           static_cast<double>(h.num_sad) / 12.0);
  }
  std::cout << "\nsmall radii (ablation; guarantee void, structure visible):\n";
  t2.print();

  std::cout << "\nShape check: at the paper radius |A| vastly exceeds the\n"
               "guaranteed n/(3d)^3 on every family (the bound is loose but\n"
               "never violated); with no poor vertices |A| >= n/(12d+1).\n";
  return 0;
}
