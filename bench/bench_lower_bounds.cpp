// E7+E8 — Theorems 1.5, 2.5, 2.6 (Figures 2 and 3): verified gadget tables.
//
// Each row checks, computationally, the premises of Observation 2.4 and
// prints the implied round lower bound: chromatic number (exact solver on
// small instances, closed formula / structure for large), ball
// isomorphism / planarity, and surface certificates (genus via face
// tracing of explicit rotation systems).
#include <iostream>

#include "scol/scol.h"

using namespace scol;

int main() {
  std::cout << "E7 / Theorem 1.5 + Figure 3: no o(n)-round 4-coloring of "
               "planar graphs\n"
               "gadget: C_n(1,2,3) — 6-regular toroidal triangulation, chi=5 "
               "(n % 4 != 0), planar balls\n\n";
  {
    Table t({"n", "chi formula", "chi exact", "genus", "triangulation",
             "planar balls to r", "=> 4-coloring needs > rounds"});
    for (Vertex n : {13, 17, 21, 25}) {
      const Theorem15Report rep = verify_theorem15_gadget(n, true);
      t.row(rep.n, rep.chi_formula, rep.chi_exact, rep.toroidal ? 1 : -1,
            rep.triangulation ? "yes" : "NO", rep.ball_radius_checked,
            rep.implied_round_lower_bound);
    }
    for (Vertex n : {61, 121, 241, 481}) {
      const Theorem15Report rep = verify_theorem15_gadget(n, false);
      t.row(rep.n, rep.chi_formula, "-", rep.toroidal ? 1 : -1,
            rep.triangulation ? "yes" : "NO", rep.ball_radius_checked,
            rep.implied_round_lower_bound);
    }
    t.print();
    std::cout << "\nlower bound grows linearly in n => Omega(n) rounds "
                 "(Theorem 1.5).\n\n";
  }

  std::cout << "E8 / Theorem 2.6 + Figure 2 (left): 3-coloring the k x k "
               "grid needs >= k/2 rounds\n"
               "gadget: Klein-bottle quadrangulation G_{2k+1,2l+1}, chi=4, "
               "grid-isomorphic balls\n\n";
  {
    Table t({"k x l", "chi exact", "bipartite", "balls=grid balls to r",
             "=> 3-coloring needs > rounds"});
    for (auto [k, l] :
         {std::pair<Vertex, Vertex>{5, 5}, {5, 7}, {7, 7}, {9, 9}}) {
      const KleinGridReport rep =
          verify_klein_gadget(k, l, /*iso_radius=*/3, k * l <= 49);
      t.row(std::to_string(k) + "x" + std::to_string(l),
            rep.chi_exact >= 0 ? std::to_string(rep.chi_exact) : "-",
            rep.bipartite ? "YES" : "no", rep.ball_radius_checked,
            rep.implied_round_lower_bound);
    }
    for (Vertex k : {13, 17, 21}) {
      const KleinGridReport rep =
          verify_klein_gadget(k, k, /*iso_radius=*/k / 2 - 1, false);
      t.row(std::to_string(k) + "x" + std::to_string(k), "-",
            rep.bipartite ? "YES" : "no", rep.ball_radius_checked,
            rep.implied_round_lower_bound);
    }
    t.print();
    std::cout << "\nradius scales with k = Theta(sqrt(n)) => Omega(sqrt(n)) "
                 "rounds for planar bipartite 3-coloring (Theorem 2.6);\n"
                 "the planar grid itself is 2-chromatic (chi = "
              << chromatic_number(grid(6, 6)) << ").\n\n";
  }

  std::cout << "E8 / Theorem 2.5 + Figure 2 (right): 3-coloring triangle-"
               "free planar graphs needs Omega(n) rounds\n"
               "gadget: G_{5,2l+1} vs planar triangle-free cylinder C5 x P\n\n";
  {
    Table t({"l", "chi exact", "cyl planar", "cyl triangle-free",
             "balls match to r", "=> 3-coloring needs > rounds"});
    for (Vertex l : {7, 9, 11, 15, 21}) {
      const TriangleFreeReport rep =
          verify_triangle_free_gadget(l, /*iso_radius=*/l / 2 - 1, l <= 9);
      t.row(rep.l,
            rep.chi_exact >= 0 ? std::to_string(rep.chi_exact) : "-",
            rep.cylinder_planar ? "yes" : "NO",
            rep.cylinder_triangle_free ? "yes" : "NO",
            rep.ball_radius_checked, rep.implied_round_lower_bound);
    }
    t.print();
    std::cout << "\nhere n = 5(2l+1): the verified radius grows linearly in "
                 "l => Omega(n) (Theorem 2.5).\nGrotzsch contrast: "
                 "triangle-free planar graphs are 3-colorable sequentially, "
                 "\nbut 4 colors (Cor. 2.3(2)) is the polylog-round "
                 "optimum.\n\n";
  }

  std::cout << "Boundary of the Theorem 1.5 construction (n % 4 == 0 is "
               "4-chromatic):\n";
  {
    Table t({"n", "n % 4", "chi exact"});
    for (Vertex n : {12, 13, 14, 15, 16, 17, 18, 19, 20}) {
      t.row(n, n % 4, chromatic_number(cycle_power(n, 3)));
    }
    t.print();
  }
  return 0;
}
