#!/usr/bin/env python3
"""Bench baseline comparator — the CI bench-gate and the baseline tooling.

Baseline files (BENCH_*.json at the repo root) pin per-series medians per
machine class ("<arch>-<cores>c-<build>") in the "scol-bench-baseline/v1"
schema written by the benches' --baseline-out mode (bench/baseline.h).
This tool is the read side. Stdlib only (like tools/check_report.py), so
CI and ctest fixtures can run it anywhere python3 exists.

Subcommands:

  compare BASELINE FRESH   diff a fresh run against the checked-in class.
      FRESH is either another baseline file or raw google-benchmark
      --benchmark_format=json output (auto-detected by its "benchmarks"
      key; per-series medians are taken over the repetition iterations,
      normalized to ms). Exit 1 if any pinned series regressed past
      --threshold (default 0.15 = 15%) or is missing from the fresh run;
      exit 0 otherwise. A fresh run from a machine class the baseline
      does not pin is SKIPPED with exit 0 (exit 3 instead under
      --require-machine-class) — that is what keeps the gate honest on
      heterogeneous CI runners. --update-improved PATH rewrites the
      baseline with improved series refreshed (only improvements past the
      threshold; regressions are never written).

  merge TARGET SOURCE...   fold SOURCE baselines' machine classes and
      series into TARGET (later sources win on conflicts). How the
      bench_main_scaling curve lands inside BENCH_perf.json.

  table BASELINE           print the pinned series as a markdown table
      (--machine-class to select one class, --series REGEX to filter).

  check-readme BASELINE README   verify (or --write) the generated table
      between the '<!-- bench-table:begin -->' / '<!-- bench-table:end -->'
      markers in README, so the published numbers can never drift from
      the checked-in baseline.
"""

import argparse
import json
import platform
import re
import statistics
import sys

SCHEMA = "scol-bench-baseline/v1"
BEGIN_MARK = "<!-- bench-table:begin -->"
END_MARK = "<!-- bench-table:end -->"

_TIME_UNIT_TO_MS = {"ns": 1e-6, "us": 1e-3, "ms": 1.0, "s": 1e3}


def fail(msg):
    print(f"bench_compare: {msg}", file=sys.stderr)
    sys.exit(2)


def load_json(path):
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot read {path}: {e}")


def require_baseline(doc, path):
    if not isinstance(doc, dict) or doc.get("schema") != SCHEMA:
        fail(f"{path}: not a {SCHEMA} file")
    if not isinstance(doc.get("machine_classes"), dict):
        fail(f"{path}: missing machine_classes")
    return doc


def local_arch():
    m = platform.machine().lower()
    if m in ("x86_64", "amd64"):
        return "x86_64"
    if m in ("aarch64", "arm64"):
        return "arm64"
    return m or "unknown"


def gbench_machine_class(doc):
    """Machine class of a raw gbench JSON run.

    gbench's context lacks the app's arch and CMake build type, so arch
    comes from the interpreter's platform (compare runs on the machine
    that produced the artifact in CI) and build from the context's
    library_build_type. Pass --machine-class when that guess is wrong.
    """
    ctx = doc.get("context", {})
    cores = int(ctx.get("num_cpus", 0)) or 1
    build = str(ctx.get("library_build_type", "unknown")).lower()
    return f"{local_arch()}-{cores}c-{build}"


def gbench_series(doc):
    """Per-series medians (ms) from gbench JSON, preferring the reporter's
    own median aggregates and falling back to a median over iterations."""
    med, raw = {}, {}
    for run in doc.get("benchmarks", []):
        name = run.get("run_name", run.get("name", ""))
        if not name:
            continue
        value_ms = float(run.get("real_time", 0.0)) * _TIME_UNIT_TO_MS.get(
            run.get("time_unit", "ns"), 1e-6
        )
        if run.get("run_type") == "aggregate":
            if run.get("aggregate_name") == "median":
                med[name] = value_ms
        else:
            raw.setdefault(name, []).append(value_ms)
    series = {}
    for name, values in raw.items():
        series[name] = {
            "value": med.get(name, statistics.median(values)),
            "unit": "ms",
            "higher_is_better": False,
            "reps": len(values),
        }
    return series


def baseline_class_series(doc, machine_class):
    cls = doc["machine_classes"].get(machine_class)
    return None if cls is None else cls.get("series", {})


def pick_class(doc, requested):
    """The machine class to read from a baseline-format file."""
    classes = list(doc["machine_classes"])
    if requested:
        if requested not in classes:
            return None
        return requested
    if len(classes) == 1:
        return classes[0]
    fail(
        "file pins several machine classes "
        f"({', '.join(sorted(classes))}); pick one with --machine-class"
    )


def fmt(value):
    return f"{value:.4g}"


def cmd_compare(args):
    base_doc = require_baseline(load_json(args.baseline), args.baseline)
    fresh_doc = load_json(args.fresh)

    if "benchmarks" in fresh_doc:  # raw google-benchmark JSON
        fresh_class = args.machine_class or gbench_machine_class(fresh_doc)
        fresh_series = gbench_series(fresh_doc)
    else:
        require_baseline(fresh_doc, args.fresh)
        fresh_class = pick_class(fresh_doc, args.machine_class)
        fresh_series = (
            None
            if fresh_class is None
            else baseline_class_series(fresh_doc, fresh_class)
        )
    if not fresh_series:
        fail(f"{args.fresh}: no series for the selected machine class")

    base_series = baseline_class_series(base_doc, fresh_class)
    if base_series is None:
        msg = (
            f"machine class '{fresh_class}' is not pinned in "
            f"{args.baseline} (pinned: "
            f"{', '.join(sorted(base_doc['machine_classes'])) or 'none'})"
        )
        if args.require_machine_class:
            print(f"FAIL: {msg}", file=sys.stderr)
            sys.exit(3)
        print(f"SKIP: {msg} — nothing to compare")
        sys.exit(0)

    rows, regressions, missing, improved = [], [], [], []
    for name in sorted(base_series):
        pinned = base_series[name]
        base_value = float(pinned["value"])
        higher = bool(pinned.get("higher_is_better", False))
        fresh = fresh_series.get(name)
        if fresh is None:
            missing.append(name)
            rows.append((name, fmt(base_value), "—", "—", "MISSING"))
            continue
        fresh_value = float(fresh["value"])
        delta = (fresh_value - base_value) / base_value if base_value else 0.0
        worse = -delta if higher else delta
        if worse > args.threshold:
            status = "REGRESSION"
            regressions.append(name)
        elif worse < -args.threshold:
            status = "improved"
            improved.append(name)
        else:
            status = "ok"
        rows.append(
            (name, fmt(base_value), fmt(fresh_value), f"{delta:+.1%}", status)
        )

    extra = sorted(set(fresh_series) - set(base_series))
    widths = [
        max(len(r[i]) for r in rows + [("series", "base", "fresh", "delta", "status")])
        for i in range(5)
    ]
    header = ("series", "base", "fresh", "delta", "status")
    for row in [header] + rows:
        print("  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
    print(
        f"\n{fresh_class}: {len(rows)} pinned series, "
        f"{len(regressions)} regression(s), {len(improved)} improved, "
        f"{len(missing)} missing, {len(extra)} unpinned "
        f"(threshold {args.threshold:.0%})"
    )
    if extra:
        print(f"unpinned (ignored): {', '.join(extra)}")

    if improved and args.update_improved and not regressions and not missing:
        for name in improved:
            entry = dict(base_series[name])
            entry["value"] = float(fresh_series[name]["value"])
            entry["reps"] = int(fresh_series[name].get("reps", entry.get("reps", 1)))
            base_series[name] = entry
        with open(args.update_improved, "w", encoding="utf-8") as f:
            json.dump(base_doc, f, indent=2)
            f.write("\n")
        print(f"refreshed baseline ({len(improved)} series) -> {args.update_improved}")

    if regressions or missing:
        print(
            "FAIL: "
            + ", ".join(
                [f"regressed: {', '.join(regressions)}"] * bool(regressions)
                + [f"missing: {', '.join(missing)}"] * bool(missing)
            ),
            file=sys.stderr,
        )
        sys.exit(1)
    sys.exit(0)


def cmd_merge(args):
    target = require_baseline(load_json(args.target), args.target)
    for src_path in args.sources:
        src = require_baseline(load_json(src_path), src_path)
        for cls_name, src_cls in src["machine_classes"].items():
            dst_cls = target["machine_classes"].setdefault(
                cls_name, {k: v for k, v in src_cls.items() if k != "series"}
            )
            dst_cls.setdefault("series", {}).update(src_cls.get("series", {}))
    with open(args.target, "w", encoding="utf-8") as f:
        json.dump(target, f, indent=2)
        f.write("\n")
    print(
        f"merged {len(args.sources)} file(s) into {args.target} "
        f"({sum(len(c.get('series', {})) for c in target['machine_classes'].values())}"
        " series total)"
    )


def render_table(doc, machine_class, series_regex):
    series = baseline_class_series(doc, machine_class)
    if series is None:
        fail(f"machine class '{machine_class}' not in baseline")
    pattern = re.compile(series_regex) if series_regex else None
    lines = [
        f"| series | median | unit | reps |",
        f"| --- | ---: | --- | ---: |",
    ]
    kept = 0
    for name in sorted(series):
        if pattern and not pattern.search(name):
            continue
        e = series[name]
        lines.append(
            f"| `{name}` | {fmt(float(e['value']))} | {e['unit']} "
            f"| {e.get('reps', 1)} |"
        )
        kept += 1
    if kept == 0:
        fail("series filter matched nothing")
    lines.append("")
    lines.append(f"_Machine class `{machine_class}`; regenerate via "
                 "`tools/bench_compare.py check-readme --write` after "
                 "refreshing the baseline (docs/BENCHMARKS.md)._")
    return "\n".join(lines)


def cmd_table(args):
    doc = require_baseline(load_json(args.baseline), args.baseline)
    cls = pick_class(doc, args.machine_class)
    if cls is None:
        fail(f"machine class '{args.machine_class}' not in baseline")
    print(render_table(doc, cls, args.series))


def cmd_check_readme(args):
    doc = require_baseline(load_json(args.baseline), args.baseline)
    cls = pick_class(doc, args.machine_class)
    if cls is None:
        fail(f"machine class '{args.machine_class}' not in baseline")
    table = render_table(doc, cls, args.series)
    try:
        with open(args.readme, encoding="utf-8") as f:
            text = f.read()
    except OSError as e:
        fail(f"cannot read {args.readme}: {e}")
    begin = text.find(BEGIN_MARK)
    end = text.find(END_MARK)
    if begin < 0 or end < 0 or end < begin:
        fail(f"{args.readme}: markers '{BEGIN_MARK}' … '{END_MARK}' not found")
    expected = f"{BEGIN_MARK}\n{table}\n{END_MARK}"
    actual = text[begin : end + len(END_MARK)]
    if actual == expected:
        print(f"{args.readme}: bench table up to date with {args.baseline}")
        return
    if args.write:
        with open(args.readme, "w", encoding="utf-8") as f:
            f.write(text[:begin] + expected + text[end + len(END_MARK):])
        print(f"{args.readme}: bench table rewritten from {args.baseline}")
        return
    print(
        f"FAIL: {args.readme} bench table is stale; regenerate with\n"
        f"  python3 tools/bench_compare.py check-readme {args.baseline} "
        f"{args.readme} --machine-class {cls}"
        + (f" --series '{args.series}'" if args.series else "")
        + " --write",
        file=sys.stderr,
    )
    sys.exit(1)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="cmd", required=True)

    p = sub.add_parser("compare", help="diff a fresh run against a baseline")
    p.add_argument("baseline")
    p.add_argument("fresh")
    p.add_argument("--threshold", type=float, default=0.15)
    p.add_argument("--machine-class")
    p.add_argument("--require-machine-class", action="store_true")
    p.add_argument("--update-improved", metavar="PATH")
    p.set_defaults(func=cmd_compare)

    p = sub.add_parser("merge", help="fold baselines into a target file")
    p.add_argument("target")
    p.add_argument("sources", nargs="+")
    p.set_defaults(func=cmd_merge)

    p = sub.add_parser("table", help="markdown table of pinned series")
    p.add_argument("baseline")
    p.add_argument("--machine-class")
    p.add_argument("--series", help="regex filter on series names")
    p.set_defaults(func=cmd_table)

    p = sub.add_parser(
        "check-readme", help="verify/rewrite the README bench table block"
    )
    p.add_argument("baseline")
    p.add_argument("readme")
    p.add_argument("--machine-class")
    p.add_argument("--series", help="regex filter on series names")
    p.add_argument("--write", action="store_true")
    p.set_defaults(func=cmd_check_readme)

    args = parser.parse_args()
    args.func(args)


if __name__ == "__main__":
    main()
