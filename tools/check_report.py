#!/usr/bin/env python3
"""Validate a scol-cli JSON report against tools/report_schema.json.

Usage: scol-cli ... | python3 tools/check_report.py [--expect-status colored]

Stdlib only (CI runs it without installing anything). Exits non-zero with
a message naming every violation.
"""
import argparse
import json
import pathlib
import sys

KIND_CHECKS = {
    "str": lambda v: isinstance(v, str),
    "int": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "num": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    "bool": lambda v: isinstance(v, bool),
    "obj": lambda v: isinstance(v, dict),
}


def check(report: dict, schema: dict) -> list[str]:
    errors = []

    def require(obj, spec, where):
        for key, kind in spec.items():
            if key not in obj:
                errors.append(f"missing key {where}{key}")
            elif not KIND_CHECKS[kind](obj[key]):
                errors.append(
                    f"key {where}{key} has type {type(obj[key]).__name__}, "
                    f"wanted {kind}")

    require(report, schema["required"], "")
    if isinstance(report.get("scenario"), dict):
        require(report["scenario"], schema["scenario_required"], "scenario.")
    status = report.get("status")
    if status not in schema["status_values"]:
        errors.append(f"status {status!r} not in {schema['status_values']}")

    # Cross-field consistency: rounds equal the ledger total; a colored
    # report names at least one color on a non-empty graph.
    ledger = report.get("ledger")
    if isinstance(ledger, dict) and isinstance(report.get("rounds"), int):
        total = sum(v for v in ledger.values() if isinstance(v, int))
        if total != report["rounds"]:
            errors.append(f"rounds {report['rounds']} != ledger total {total}")
    if status == "colored":
        scenario = report.get("scenario", {})
        if scenario.get("n", 0) > 0 and report.get("colors_used", 0) <= 0:
            errors.append("colored report with no colors used")
    if status == "failed" and not report.get("failure_reason"):
        errors.append("failed report without failure_reason")
    return errors


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--expect-status", default=None,
                        help="additionally require this status value")
    parser.add_argument("--schema",
                        default=pathlib.Path(__file__).parent /
                        "report_schema.json")
    args = parser.parse_args()

    schema = json.loads(pathlib.Path(args.schema).read_text())
    try:
        report = json.load(sys.stdin)
    except json.JSONDecodeError as e:
        print(f"check_report: stdin is not valid JSON: {e}", file=sys.stderr)
        return 1

    errors = check(report, schema)
    if args.expect_status and report.get("status") != args.expect_status:
        errors.append(
            f"expected status {args.expect_status!r}, got "
            f"{report.get('status')!r}")
    if errors:
        for e in errors:
            print(f"check_report: {e}", file=sys.stderr)
        return 1
    print(f"check_report: ok ({report['algorithm']} -> {report['status']}, "
          f"{report['colors_used']} colors, {report['rounds']} rounds)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
