#!/usr/bin/env python3
"""Validate scol-cli JSON output against tools/report_schema.json.

Single-report mode (default):
    scol-cli ... | python3 tools/check_report.py [--expect-status colored]

Campaign JSONL mode (one report per line, the `scol-cli campaign` stream):
    python3 tools/check_report.py --jsonl [--expect-oracle-clean] \
        [--expect-jobs N] < runs.jsonl

Serve mode (the scol-serve NDJSON response stream, docs/SERVE.md):
    scol-serve < requests.ndjson | python3 tools/check_report.py --serve \
        [--expect-no-errors] [--min-hits N]

Serve mode validates every envelope (solve / stats / shutdown / error)
and recurses into each solve envelope's "report" with the single-report
schema; served reports must additionally carry wall_ms == 0, the
byte-stable mode the report cache depends on.

Stdlib only (CI runs it without installing anything). Exits non-zero with
a message naming every violation (line-numbered in --jsonl and --serve
modes).
"""
import argparse
import json
import pathlib
import sys

KIND_CHECKS = {
    "str": lambda v: isinstance(v, str),
    "int": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "num": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    "bool": lambda v: isinstance(v, bool),
    "obj": lambda v: isinstance(v, dict),
    "list": lambda v: isinstance(v, list),
}


def check(report: dict, schema: dict, campaign_line: bool = False
          ) -> list[str]:
    errors = []

    def require(obj, spec, where):
        for key, kind in spec.items():
            if key not in obj:
                errors.append(f"missing key {where}{key}")
            elif not KIND_CHECKS[kind](obj[key]):
                errors.append(
                    f"key {where}{key} has type {type(obj[key]).__name__}, "
                    f"wanted {kind}")

    require(report, schema["required"], "")
    if isinstance(report.get("scenario"), dict):
        require(report["scenario"], schema["scenario_required"], "scenario.")
    status = report.get("status")
    if status not in schema["status_values"]:
        errors.append(f"status {status!r} not in {schema['status_values']}")

    if campaign_line:
        require(report, schema["campaign_required"], "")
        if isinstance(report.get("oracle"), dict):
            require(report["oracle"], schema["oracle_required"], "oracle.")
            oracle = report["oracle"]
            if oracle.get("ok") is True and oracle.get("violations"):
                errors.append("oracle.ok true but violations non-empty")
            if oracle.get("ok") is False and not oracle.get("violations"):
                errors.append("oracle.ok false without a violation message")
        if report.get("lists") not in schema["lists_values"]:
            errors.append(
                f"lists {report.get('lists')!r} not in "
                f"{schema['lists_values']}")

    # Cross-field consistency: rounds equal the ledger total; a colored
    # report names at least one color on a non-empty graph.
    ledger = report.get("ledger")
    if isinstance(ledger, dict) and isinstance(report.get("rounds"), int):
        total = sum(v for v in ledger.values() if isinstance(v, int))
        if total != report["rounds"]:
            errors.append(f"rounds {report['rounds']} != ledger total {total}")
    if status == "colored":
        scenario = report.get("scenario", {})
        if scenario.get("n", 0) > 0 and report.get("colors_used", 0) <= 0:
            errors.append("colored report with no colors used")
    if status == "failed" and not report.get("failure_reason"):
        errors.append("failed report without failure_reason")
    # Sharded-executor telemetry: a run that reports metrics.shards must
    # carry the whole exchange block, satisfy the wire-accounting
    # invariant (8 bytes per boundary update: vertex id + color), and
    # agree with the line-level "shards" field when both are present.
    metrics = report.get("metrics")
    if isinstance(metrics, dict) and "shards" in metrics:
        require(metrics, schema["shard_metrics_required"], "metrics.")
        counters = ("shards", "exchange_rounds", "exchange_messages",
                    "exchange_bytes", "boundary_vertices", "cut_edges")
        if all(isinstance(metrics.get(k), int) for k in counters):
            if metrics["shards"] < 1:
                errors.append(f"metrics.shards {metrics['shards']} < 1")
            if any(metrics[k] < 0 for k in counters):
                errors.append("negative shard exchange counter")
            per_update = schema["shard_bytes_per_update"]
            if metrics["exchange_bytes"] != \
                    per_update * metrics["exchange_messages"]:
                errors.append(
                    f"exchange_bytes {metrics['exchange_bytes']} != "
                    f"{per_update} * exchange_messages "
                    f"{metrics['exchange_messages']}")
            if metrics["shards"] == 1 and metrics["exchange_messages"] != 0:
                errors.append("single-shard run exchanged messages")
        if isinstance(report.get("shards"), int) \
                and report["shards"] != metrics["shards"]:
            errors.append(
                f"line shards {report['shards']} != metrics.shards "
                f"{metrics['shards']}")
    # "skipped" only exists on campaign lines (the probe filter); a
    # skipped line must say why, and a single-run report can never skip.
    if status == "skipped":
        if not campaign_line:
            errors.append("skipped status outside a campaign JSONL line")
        elif not isinstance(report.get("skip_reason"), str) \
                or not report["skip_reason"]:
            errors.append("skipped line without a skip_reason")
    return errors


def check_jsonl(stream, schema: dict, args) -> list[str]:
    errors = []
    reports = []
    for lineno, line in enumerate(stream, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            report = json.loads(line)
        except json.JSONDecodeError as e:
            errors.append(f"line {lineno}: not valid JSON: {e}")
            continue
        for e in check(report, schema, campaign_line=True):
            errors.append(f"line {lineno}: {e}")
        reports.append(report)

    # An empty stream must not validate clean (a truncated or crashed
    # campaign would otherwise pass); `--expect-jobs 0` opts a genuinely
    # empty shard back in.
    if not reports and args.expect_jobs != 0:
        errors.append("no JSONL lines parsed (pass --expect-jobs 0 if an "
                      "empty shard is intended)")
    # Stream-level consistency: the "job" field is the line's position in
    # the (shard's slice of the) grid — strictly increasing, and dense
    # from 0 for an unsharded run.
    jobs = [r.get("job") for r in reports if isinstance(r.get("job"), int)]
    if any(b <= a for a, b in zip(jobs, jobs[1:])):
        errors.append("job indices are not strictly increasing")
    if args.expect_jobs is not None and len(reports) != args.expect_jobs:
        errors.append(f"expected {args.expect_jobs} lines, got {len(reports)}")
    if args.expect_colored is not None:
        colored = sum(1 for r in reports if r.get("status") == "colored")
        if colored < args.expect_colored:
            errors.append(
                f"expected >= {args.expect_colored} colored lines, got "
                f"{colored}")
    if args.expect_oracle_clean:
        dirty = sum(1 for r in reports
                    if isinstance(r.get("oracle"), dict)
                    and r["oracle"].get("ok") is not True)
        if dirty:
            errors.append(f"{dirty} line(s) with oracle violations")
    if args.expect_no_failed:
        failed = sum(1 for r in reports if r.get("status") == "failed")
        if failed:
            errors.append(f"{failed} line(s) with status 'failed' "
                          f"(--expect-no-failed)")
    if args.expect_shards is not None:
        # A telemetry-carrying sharded campaign stamps every line
        # (skipped ones included) with the executor's shard count, and
        # every line that actually solved must carry the exchange block
        # (check() above validated its shape and invariants).
        for lineno, r in enumerate(reports, start=1):
            if r.get("shards") != args.expect_shards:
                errors.append(
                    f"line {lineno}: shards {r.get('shards')!r} != "
                    f"{args.expect_shards} (--expect-shards)")
            elif r.get("status") != "skipped" \
                    and not isinstance(
                        r.get("metrics", {}).get("shards"), int):
                errors.append(
                    f"line {lineno}: solved line without shard exchange "
                    f"metrics (--expect-shards)")
    if not errors:
        colored = sum(1 for r in reports if r.get("status") == "colored")
        failed = sum(1 for r in reports if r.get("status") == "failed")
        skipped = sum(1 for r in reports if r.get("status") == "skipped")
        print(f"check_report: ok ({len(reports)} jsonl lines, "
              f"{colored} colored, {failed} failed, {skipped} skipped)")
    return errors


def check_serve(stream, schema: dict, args) -> list[str]:
    errors = []
    responses = 0
    error_envelopes = 0
    report_hits = 0
    for lineno, line in enumerate(stream, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            env = json.loads(line)
        except json.JSONDecodeError as e:
            errors.append(f"line {lineno}: not valid JSON: {e}")
            continue
        responses += 1

        def bad(msg):
            errors.append(f"line {lineno}: {msg}")

        if not isinstance(env, dict):
            bad("envelope is not an object")
            continue
        if not isinstance(env.get("ok"), bool):
            bad("envelope without a boolean 'ok'")
            continue
        if "id" not in env:
            bad("envelope without an 'id' echo")

        if not env["ok"]:
            error_envelopes += 1
            if not isinstance(env.get("error"), str) or not env["error"]:
                bad("error envelope without an 'error' message")
            continue
        if "stats" in env or "shutdown" in env:
            payload = env.get("stats", env.get("shutdown"))
            if not isinstance(payload, dict):
                bad("control envelope payload is not an object")
            elif "stats" in env:
                for section in ("graphs", "reports", "server"):
                    if not isinstance(payload.get(section), dict):
                        bad(f"stats envelope without a '{section}' section")
            continue

        # A solve envelope: cache verdicts, telemetry, and a full report.
        cache = env.get("cache")
        if not isinstance(cache, dict):
            bad("solve envelope without a 'cache' object")
        else:
            require_in = schema["serve_cache_verdicts"]
            for key in ("graph", "report"):
                if cache.get(key) not in require_in:
                    bad(f"cache.{key} {cache.get(key)!r} not in {require_in}")
            digest = cache.get("hash")
            if not (isinstance(digest, str) and len(digest) == 32
                    and all(c in "0123456789abcdef" for c in digest)):
                bad("cache.hash is not 32 lowercase hex characters")
            if cache.get("report") == "hit":
                report_hits += 1
        telemetry = env.get("telemetry")
        if not isinstance(telemetry, dict):
            bad("solve envelope without a 'telemetry' object")
        else:
            for key, kind in schema["serve_telemetry_required"].items():
                if not KIND_CHECKS[kind](telemetry.get(key)):
                    bad(f"telemetry.{key} is not a {kind}")
        report = env.get("report")
        if not isinstance(report, dict):
            bad("solve envelope without a 'report' object")
            continue
        for e in check(report, schema):
            bad(e)
        if report.get("wall_ms") != 0:
            bad("served report with non-zero wall_ms (must be untimed)")

    if responses == 0:
        errors.append("no serve responses parsed")
    if args.expect_no_errors and error_envelopes:
        errors.append(f"{error_envelopes} error envelope(s) "
                      f"(--expect-no-errors)")
    if args.min_hits is not None and report_hits < args.min_hits:
        errors.append(
            f"expected >= {args.min_hits} report-cache hits, got "
            f"{report_hits}")
    if not errors:
        print(f"check_report: ok ({responses} serve responses, "
              f"{report_hits} report hits, {error_envelopes} errors)")
    return errors


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--expect-status", default=None,
                        help="additionally require this status value")
    parser.add_argument("--jsonl", action="store_true",
                        help="validate a campaign JSONL stream instead of "
                             "one report")
    parser.add_argument("--serve", action="store_true",
                        help="validate a scol-serve NDJSON response stream")
    parser.add_argument("--expect-no-errors", action="store_true",
                        help="--serve: fail on any error envelope")
    parser.add_argument("--min-hits", type=int, default=None,
                        help="--serve: require at least this many "
                             "report-cache hits")
    parser.add_argument("--expect-oracle-clean", action="store_true",
                        help="fail if any JSONL line has oracle.ok != true")
    parser.add_argument("--expect-jobs", type=int, default=None,
                        help="require exactly this many JSONL lines")
    parser.add_argument("--expect-colored", type=int, default=None,
                        help="require at least this many colored lines "
                             "(an all-failed campaign must not pass)")
    parser.add_argument("--expect-no-failed", action="store_true",
                        help="fail if any JSONL line has status 'failed' "
                             "(probe-filtered grids answer every cell)")
    parser.add_argument("--expect-shards", type=int, default=None,
                        help="require every JSONL line to carry this "
                             "sharded-executor count and every solved "
                             "line its exchange telemetry")
    parser.add_argument("--schema",
                        default=pathlib.Path(__file__).parent /
                        "report_schema.json")
    args = parser.parse_args()

    schema = json.loads(pathlib.Path(args.schema).read_text())

    if args.serve:
        errors = check_serve(sys.stdin, schema, args)
        for e in errors:
            print(f"check_report: {e}", file=sys.stderr)
        return 1 if errors else 0

    if args.jsonl:
        errors = check_jsonl(sys.stdin, schema, args)
        for e in errors:
            print(f"check_report: {e}", file=sys.stderr)
        return 1 if errors else 0

    try:
        report = json.load(sys.stdin)
    except json.JSONDecodeError as e:
        print(f"check_report: stdin is not valid JSON: {e}", file=sys.stderr)
        return 1

    errors = check(report, schema)
    if args.expect_status and report.get("status") != args.expect_status:
        errors.append(
            f"expected status {args.expect_status!r}, got "
            f"{report.get('status')!r}")
    if errors:
        for e in errors:
            print(f"check_report: {e}", file=sys.stderr)
        return 1
    print(f"check_report: ok ({report['algorithm']} -> {report['status']}, "
          f"{report['colors_used']} colors, {report['rounds']} rounds)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
