// scol-bench-load — Zipf-skewed load generator and correctness oracle
// for scol-serve.
//
// Builds a deterministic universe of request keys (bundled example
// graphs + generator scenarios, crossed with precondition-free
// algorithms and a few seeds), draws `--requests` keys from a Zipf
// distribution over that universe, and drives them through a daemon —
// either one it spawns itself over a stdin/stdout pipe (default) or an
// already-running TCP instance (--port). Requests are pipelined by a
// writer thread while the main thread reads responses in order.
//
// Every response is checked, not just timed: the envelope must be ok,
// the echoed id must match, and (unless --no-verify) the nested report
// must be BYTE-identical to the library's one-shot path — the same
// bytes `scol-cli --no-timing` prints for that request — with repeats
// of a key identical to its first response. The summary reports QPS,
// client-side latency percentiles, cache hit rates, and the server's
// own /stats payload.
//
//   $ scol-bench-load --requests 1000 --jobs 4
//   $ scol-bench-load --requests 10000 --theta 1.1 --pretty
//   $ scol-serve --port 0 ... ; scol-bench-load --port 43211
//
// Flags:
//   --requests N       solve requests to send (default 1000)
//   --theta T          Zipf skew over the key universe (default 0.9;
//                      0 = uniform)
//   --seed S           sampler seed (default 1)
//   --window N         max in-flight requests (default 256)
//   --jobs N           spawned daemon's --jobs (default 4)
//   --max-batch N      spawned daemon's --max-batch (default 64)
//   --serve-bin PATH   daemon binary (default: next to this binary)
//   --port P           drive an already-running daemon on 127.0.0.1:P
//                      instead of spawning one (no shutdown on exit)
//   --no-verify        skip the byte-identity oracle
//   --pretty           indent the summary JSON
//   --version / --help
//
// Exit code: 0 when every response was ok and verified, 1 on any failed
// response, byte mismatch, or daemon failure, 2 on usage errors.
#include <sys/socket.h>
#include <sys/wait.h>
#include <netinet/in.h>
#include <arpa/inet.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <limits>
#include <istream>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

#include "parse_num.h"
#include "scol/api/oneshot.h"
#include "scol/serve/fdstream.h"
#include "scol/serve/zipf.h"
#include "scol/util/rng.h"
#include "scol/version.h"

namespace {

using namespace scol;
using Clock = std::chrono::steady_clock;

const char* kUsage =
    "usage: scol-bench-load [--requests N] [--theta T] [--seed S]\n"
    "                       [--window N] [--jobs N] [--max-batch N]\n"
    "                       [--serve-bin PATH | --port P] [--no-verify]\n"
    "                       [--pretty] [--version] [--help]\n"
    "exit codes: 0 all responses ok and byte-verified,\n"
    "            1 failed response / mismatch / daemon failure,\n"
    "            2 usage error\n";

[[noreturn]] void usage_error(const std::string& message) {
  std::cerr << "scol-bench-load: " << message << "\n" << kUsage;
  std::exit(2);
}

/// One request shape in the universe; `line` is pre-serialized except
/// for the id, which is appended per send.
struct RequestKey {
  OneShotSpec spec;
  std::string body;  // "\"gen\":...,\"algo\":...,..." (no braces/id)
};

std::string json_str(const std::string& s) { return Json::str(s).dump(); }

// The key universe: every bundled example graph and a spread of
// generator scenarios, crossed with algorithms that run on any simple
// graph (no structural precondition, no required params) and a few
// seeds. Sizes are kept small so a 10k-request mix finishes in seconds
// while still exercising parse, generate, probe-free solve, lists, and
// both cache layers.
std::vector<RequestKey> build_universe() {
  const std::string repo = SCOL_REPO_DIR;
  const std::vector<std::string> gens = {
      "grid:rows=12,cols=12",
      "cylinder:rows=10,cols=10",
      "hex:rows=10,cols=10",
      "planar:n=200",
      "regular:n=256,d=4",
      "gnm:n=256,m=640",
      "tree:n=300",
      "cycle-power:n=64,k=2",
      "file:path=" + repo + "/examples/graphs/grotzsch.col",
      "file:path=" + repo + "/examples/graphs/petersen.mtx",
      "file:path=" + repo + "/examples/graphs/heawood.edges",
      "file:path=" + repo + "/examples/graphs/grid8x8.graph",
  };
  const std::vector<std::string> algos = {"greedy", "dsatur", "degeneracy",
                                          "delta-list", "randomized"};
  std::vector<RequestKey> universe;
  for (const auto& gen : gens) {
    for (const auto& algo : algos) {
      for (std::uint64_t seed = 1; seed <= 2; ++seed) {
        RequestKey key;
        key.spec.scenario = gen;
        key.spec.algorithm = algo;
        key.spec.seed = seed;
        key.spec.include_timing = false;  // the server's fixed mode
        key.spec.validate = true;
        key.body = json_str("gen") + ":" + json_str(gen) + "," +
                   json_str("algo") + ":" + json_str(algo) + "," +
                   json_str("seed") + ":" + std::to_string(seed);
        universe.push_back(std::move(key));
      }
    }
  }
  return universe;
}

struct Transport {
  int write_fd = -1;
  int read_fd = -1;
  pid_t child = -1;  // spawned daemon, -1 when connected via --port
};

std::string default_serve_bin(const char* argv0) {
  const std::string self = argv0;
  const std::size_t slash = self.rfind('/');
  return slash == std::string::npos ? "scol-serve"
                                    : self.substr(0, slash + 1) +
                                          "scol-serve";
}

Transport spawn_daemon(const std::string& bin, int jobs, int max_batch) {
  int to_child[2], from_child[2];
  if (::pipe(to_child) != 0 || ::pipe(from_child) != 0) {
    std::cerr << "scol-bench-load: pipe() failed\n";
    std::exit(1);
  }
  const pid_t pid = ::fork();
  if (pid < 0) {
    std::cerr << "scol-bench-load: fork() failed\n";
    std::exit(1);
  }
  if (pid == 0) {
    ::dup2(to_child[0], 0);
    ::dup2(from_child[1], 1);
    ::close(to_child[0]);
    ::close(to_child[1]);
    ::close(from_child[0]);
    ::close(from_child[1]);
    const std::string jobs_s = std::to_string(jobs);
    const std::string batch_s = std::to_string(max_batch);
    ::execl(bin.c_str(), bin.c_str(), "--jobs", jobs_s.c_str(),
            "--max-batch", batch_s.c_str(), static_cast<char*>(nullptr));
    // exec failed; the parent sees EOF on the response pipe.
    std::cerr << "scol-bench-load: cannot exec '" << bin << "'\n";
    ::_exit(127);
  }
  ::close(to_child[0]);
  ::close(from_child[1]);
  Transport t;
  t.write_fd = to_child[1];
  t.read_fd = from_child[0];
  t.child = pid;
  return t;
}

Transport connect_daemon(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (fd < 0 || ::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                          sizeof(addr)) != 0) {
    std::cerr << "scol-bench-load: cannot connect to 127.0.0.1:" << port
              << "\n";
    std::exit(1);
  }
  Transport t;
  t.write_fd = fd;
  t.read_fd = fd;
  return t;
}

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double rank = p * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

}  // namespace

int main(int argc, char** argv) {
  // A daemon that dies mid-run must surface as a failed run, not kill
  // this process on the next pipe write.
  std::signal(SIGPIPE, SIG_IGN);
  std::int64_t requests = 1000;
  double theta = 0.9;
  std::uint64_t seed = 1;
  std::size_t window = 256;
  int jobs = 4;
  int max_batch = 64;
  std::string serve_bin = default_serve_bin(argv[0]);
  int port = -1;
  bool verify = true;
  bool pretty = false;

  const auto need_value = [&](int i, const char* flag) -> std::string {
    if (i + 1 >= argc) usage_error(std::string(flag) + " needs a value");
    return argv[i + 1];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--version") {
      std::cout << "scol-bench-load " << kVersion << "\n";
      return 0;
    } else if (arg == "--help") {
      std::cout << kUsage;
      return 0;
    } else if (arg == "--requests") {
      requests = scol_cli_parse::checked_int(
          need_value(i, "--requests"), "--requests", 1,
          std::numeric_limits<std::int64_t>::max(), usage_error);
      ++i;
    } else if (arg == "--theta") {
      theta = scol_cli_parse::checked_real(need_value(i, "--theta"),
                                           "--theta", 0.0, usage_error);
      ++i;
    } else if (arg == "--seed") {
      seed = scol_cli_parse::checked_seed(need_value(i, "--seed"), "--seed",
                                          usage_error);
      ++i;
    } else if (arg == "--window") {
      window = static_cast<std::size_t>(scol_cli_parse::checked_int(
          need_value(i, "--window"), "--window", 1,
          std::numeric_limits<std::int64_t>::max(), usage_error));
      ++i;
    } else if (arg == "--jobs") {
      jobs = static_cast<int>(scol_cli_parse::checked_int(
          need_value(i, "--jobs"), "--jobs", 1,
          std::numeric_limits<int>::max(), usage_error));
      ++i;
    } else if (arg == "--max-batch") {
      max_batch = static_cast<int>(scol_cli_parse::checked_int(
          need_value(i, "--max-batch"), "--max-batch", 1,
          std::numeric_limits<int>::max(), usage_error));
      ++i;
    } else if (arg == "--serve-bin") {
      serve_bin = need_value(i, "--serve-bin");
      ++i;
    } else if (arg == "--port") {
      port = static_cast<int>(scol_cli_parse::checked_int(
          need_value(i, "--port"), "--port", 0, 65535, usage_error));
      ++i;
    } else if (arg == "--no-verify") {
      verify = false;
    } else if (arg == "--pretty") {
      pretty = true;
    } else {
      usage_error("unknown flag '" + arg + "'");
    }
  }

  const std::vector<RequestKey> universe = build_universe();

  // Draw the whole request sequence up front: the mix is a pure
  // function of (seed, theta, requests), independent of timing.
  // Zipf rank → universe index through a seeded shuffle, so the hot
  // keys are not simply the first-constructed ones.
  std::vector<std::size_t> rank_to_key(universe.size());
  for (std::size_t i = 0; i < rank_to_key.size(); ++i) rank_to_key[i] = i;
  Rng rng(seed);
  rng.shuffle(rank_to_key);
  const ZipfSampler zipf(universe.size(), theta);
  std::vector<std::size_t> sequence(static_cast<std::size_t>(requests));
  for (auto& s : sequence) s = rank_to_key[zipf.draw(rng)];

  Transport transport = port >= 0
                            ? connect_daemon(port)
                            : spawn_daemon(serve_bin, jobs, max_batch);

  FdStreamBuf in_buf(transport.read_fd);
  FdStreamBuf out_buf(transport.write_fd);
  std::istream in(&in_buf);
  std::ostream out(&out_buf);

  const std::size_t n = sequence.size();
  // Send timestamps cross the writer→reader thread boundary as atomic
  // nanosecond counts (the matching response can't be read before its
  // request was sent, but the compiler doesn't know that).
  std::vector<std::atomic<std::int64_t>> sent_ns(n);
  std::vector<double> latency_ms(n, 0.0);
  const auto now_ns = [] {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               Clock::now().time_since_epoch())
        .count();
  };

  // Writer thread pipelines requests while the main thread reads
  // responses in order. The window bound keeps client memory and
  // server queues honest; flushing every 32 lines (and always before
  // blocking on the window) keeps the daemon fed while still giving
  // its batching something to batch.
  std::atomic<std::size_t> received{0};
  std::atomic<bool> dead{false};
  std::thread writer([&] {
    for (std::size_t i = 0; i < n; ++i) {
      if (i - received.load(std::memory_order_acquire) >= window) {
        out.flush();
        while (i - received.load(std::memory_order_acquire) >= window) {
          if (dead.load(std::memory_order_acquire)) return;
          std::this_thread::yield();
        }
      }
      const RequestKey& key = universe[sequence[i]];
      sent_ns[i].store(now_ns(), std::memory_order_release);
      out << "{\"id\":" << i << "," << key.body << "}\n";
      if ((i + 1) % 32 == 0) out.flush();
    }
    out.flush();
  });

  const auto t_start = Clock::now();
  std::int64_t failed = 0;
  std::int64_t id_mismatches = 0;
  std::int64_t report_hits = 0;
  std::int64_t graph_hits = 0;
  std::int64_t mismatches = 0;
  std::int64_t repeat_mismatches = 0;
  // First response bytes per universe key; later responses must match.
  std::map<std::size_t, std::string> first_report;

  std::string line;
  bool stream_died = false;
  for (std::size_t i = 0; i < n; ++i) {
    if (!std::getline(in, line)) {
      std::cerr << "scol-bench-load: daemon stream ended after " << i
                << " of " << n << " responses\n";
      stream_died = true;
      break;
    }
    latency_ms[i] = static_cast<double>(
                        now_ns() -
                        sent_ns[i].load(std::memory_order_acquire)) /
                    1e6;
    received.store(i + 1, std::memory_order_release);
    try {
      const Json env = Json::parse(line);
      const Json* ok = env.get("ok");
      if (ok == nullptr || !ok->is_bool() || !ok->as_bool()) {
        ++failed;
        if (failed <= 3)
          std::cerr << "scol-bench-load: failed response: " << line << "\n";
        continue;
      }
      const Json* id = env.get("id");
      if (id == nullptr || !id->is_int() ||
          id->as_int() != static_cast<std::int64_t>(i))
        ++id_mismatches;
      const Json* cache = env.get("cache");
      if (cache != nullptr) {
        const Json* r = cache->get("report");
        const Json* g = cache->get("graph");
        if (r != nullptr && r->is_str() && r->as_str() == "hit")
          ++report_hits;
        if (g != nullptr && g->is_str() && g->as_str() == "hit")
          ++graph_hits;
      }
      const Json* report = env.get("report");
      if (report == nullptr) {
        ++failed;
        continue;
      }
      const std::string bytes = report->dump();
      auto [it, inserted] =
          first_report.emplace(sequence[i], bytes);
      if (!inserted && it->second != bytes) ++repeat_mismatches;
    } catch (const std::exception& e) {
      ++failed;
      if (failed <= 3)
        std::cerr << "scol-bench-load: bad response line: " << e.what()
                  << "\n";
    }
  }
  const double wall_ms = std::chrono::duration<double, std::milli>(
                             Clock::now() - t_start)
                             .count();
  if (stream_died) dead.store(true, std::memory_order_release);
  writer.join();

  // Server-side counters, then (for a spawned daemon) a clean shutdown.
  Json server_stats;
  if (!stream_died) {
    out << "{\"op\":\"stats\",\"id\":\"stats\"}\n";
    if (transport.child >= 0) out << "{\"op\":\"shutdown\"}\n";
    out.flush();
    if (std::getline(in, line)) {
      try {
        const Json env = Json::parse(line);
        const Json* stats = env.get("stats");
        if (stats != nullptr) server_stats = *stats;
      } catch (const std::exception&) {
      }
    }
    if (transport.child >= 0) std::getline(in, line);  // shutdown ack
  }
  if (transport.child >= 0) {
    ::close(transport.write_fd);
    ::close(transport.read_fd);
    int status = 0;
    ::waitpid(transport.child, &status, 0);
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
      std::cerr << "scol-bench-load: daemon exited abnormally\n";
      stream_died = true;
    }
  } else {
    ::close(transport.write_fd);
  }

  // The byte-identity oracle: the first response of every key that
  // actually occurred must equal the library's one-shot report — the
  // exact bytes `scol-cli --no-timing` would print.
  std::int64_t verified = 0;
  if (verify) {
    for (const auto& [key_index, bytes] : first_report) {
      const std::string expected =
          one_shot_report(universe[key_index].spec).dump();
      ++verified;
      if (bytes != expected) {
        ++mismatches;
        if (mismatches <= 3)
          std::cerr << "scol-bench-load: report mismatch for key "
                    << key_index << ":\n  served:  " << bytes
                    << "\n  oneshot: " << expected << "\n";
      }
    }
  }

  std::vector<double> sorted(latency_ms.begin(), latency_ms.end());
  std::sort(sorted.begin(), sorted.end());

  Json summary = Json::object();
  summary.set("requests", Json::integer(requests));
  summary.set("universe",
              Json::integer(static_cast<std::int64_t>(universe.size())));
  summary.set("theta", Json::real(theta));
  summary.set("wall_ms", Json::real(wall_ms));
  summary.set("qps", Json::real(wall_ms > 0.0
                                    ? static_cast<double>(n) * 1000.0 /
                                          wall_ms
                                    : 0.0));
  Json lat = Json::object();
  lat.set("p50", Json::real(percentile(sorted, 0.50)));
  lat.set("p90", Json::real(percentile(sorted, 0.90)));
  lat.set("p99", Json::real(percentile(sorted, 0.99)));
  lat.set("max", Json::real(sorted.empty() ? 0.0 : sorted.back()));
  summary.set("latency_ms", std::move(lat));
  Json cache = Json::object();
  cache.set("report_hits", Json::integer(report_hits));
  cache.set("graph_hits", Json::integer(graph_hits));
  cache.set("report_hit_rate",
            Json::real(n > 0 ? static_cast<double>(report_hits) /
                                   static_cast<double>(n)
                             : 0.0));
  summary.set("cache", std::move(cache));
  summary.set("failed", Json::integer(failed));
  summary.set("id_mismatches", Json::integer(id_mismatches));
  Json ver = Json::object();
  ver.set("enabled", Json::boolean(verify));
  ver.set("keys_checked", Json::integer(verified));
  ver.set("mismatches", Json::integer(mismatches));
  ver.set("repeat_mismatches", Json::integer(repeat_mismatches));
  summary.set("verify", std::move(ver));
  if (!server_stats.is_null())
    summary.set("server_stats", std::move(server_stats));
  std::cout << summary.dump(pretty ? 2 : -1) << "\n";

  const bool ok = !stream_died && failed == 0 && id_mismatches == 0 &&
                  mismatches == 0 && repeat_mismatches == 0;
  return ok ? 0 : 1;
}
