// Checked numeric flag parsing shared by scol-cli, scol-serve, and
// scol-bench-load.
//
// The raw std::atoi / std::atoll / std::atof / strtoull parses the CLIs
// used to do turn garbage into 0 silently: `--seeds foo` ran a zero-seed
// campaign that "succeeded", `--jobs 4x` ran one job, `--seed -1` became
// an astronomically large unsigned seed. Every numeric flag now goes
// through one of the checked_* helpers below, which reject empty values,
// non-numeric text, trailing junk, overflow, and out-of-range values with
// a message that names the flag — routed through the caller's
// [[noreturn]] usage-error function, so each binary keeps its own usage
// text and the exit code stays 2.
#pragma once

#include <cerrno>
#include <charconv>
#include <cstdint>
#include <cstdlib>
#include <string>

namespace scol_cli_parse {

// Core parses: the WHOLE text must be one number. Returns "" on success,
// else a message that already names the flag.

template <typename Int>
std::string parse_integer(const std::string& text, const char* flag,
                          Int* out) {
  if (text.empty())
    return std::string(flag) + ": expected an integer, got ''";
  const char* first = text.data();
  const char* last = text.data() + text.size();
  const std::from_chars_result r = std::from_chars(first, last, *out);
  if (r.ec == std::errc::result_out_of_range)
    return std::string(flag) + ": number out of range: '" + text + "'";
  if (r.ec != std::errc())
    return std::string(flag) + ": expected an integer, got '" + text + "'";
  if (r.ptr != last)
    return std::string(flag) + ": trailing junk after the number in '" +
           text + "'";
  return "";
}

inline std::string parse_real(const std::string& text, const char* flag,
                              double* out) {
  if (text.empty())
    return std::string(flag) + ": expected a number, got ''";
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end == text.c_str())
    return std::string(flag) + ": expected a number, got '" + text + "'";
  if (*end != '\0')
    return std::string(flag) + ": trailing junk after the number in '" +
           text + "'";
  if (errno == ERANGE)
    return std::string(flag) + ": number out of range: '" + text + "'";
  *out = v;
  return "";
}

// Flag-level conveniences. `fail` is the binary's [[noreturn]] usage-error
// function (message -> usage text -> exit 2); the returns after it are
// unreachable but keep the compiler satisfied for non-attributed callables.

template <typename Fail>
std::int64_t checked_int(const std::string& text, const char* flag,
                         std::int64_t min_value, std::int64_t max_value,
                         Fail&& fail) {
  std::int64_t v = 0;
  const std::string err = parse_integer(text, flag, &v);
  if (!err.empty()) {
    fail(err);
    return 0;
  }
  if (v < min_value)
    fail(std::string(flag) + ": must be >= " + std::to_string(min_value) +
         ", got " + text);
  if (v > max_value)
    fail(std::string(flag) + ": must be <= " + std::to_string(max_value) +
         ", got " + text);
  return v;
}

/// Seeds: any non-negative 64-bit value (a '-' is rejected up front so it
/// cannot wrap to an astronomically large unsigned seed).
template <typename Fail>
std::uint64_t checked_seed(const std::string& text, const char* flag,
                           Fail&& fail) {
  if (!text.empty() && text[0] == '-')
    fail(std::string(flag) + ": must be >= 0, got " + text);
  std::uint64_t v = 0;
  const std::string err = parse_integer(text, flag, &v);
  if (!err.empty()) {
    fail(err);
    return 0;
  }
  return v;
}

template <typename Fail>
double checked_real(const std::string& text, const char* flag,
                    double min_value, Fail&& fail) {
  double v = 0.0;
  const std::string err = parse_real(text, flag, &v);
  if (!err.empty()) {
    fail(err);
    return 0.0;
  }
  if (v < min_value)
    fail(std::string(flag) + ": must be >= " + std::to_string(min_value) +
         ", got " + text);
  return v;
}

/// `--shard i/m`: both parts must be numeric (errors carry the part's
/// position in the spec) with m >= 1 and 0 <= i < m.
template <typename Fail>
void checked_shard_spec(const std::string& text, std::int64_t* index,
                        std::int64_t* count, Fail&& fail) {
  const std::size_t slash = text.find('/');
  if (slash == std::string::npos) {
    fail("--shard wants i/m, got '" + text + "'");
    return;
  }
  const std::string index_part = text.substr(0, slash);
  const std::string count_part = text.substr(slash + 1);
  std::string err = parse_integer(index_part, "--shard index", index);
  if (!err.empty())
    fail(err + " (position 0 of '" + text + "')");
  err = parse_integer(count_part, "--shard count", count);
  if (!err.empty())
    fail(err + " (position " + std::to_string(slash + 1) + " of '" + text +
         "')");
  if (*count < 1)
    fail("--shard count must be >= 1, got '" + text + "'");
  if (*index < 0 || *index >= *count)
    fail("--shard index must satisfy 0 <= i < m, got '" + text + "'");
}

}  // namespace scol_cli_parse
