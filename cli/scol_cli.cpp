// scol-cli — run any registered algorithm over any generator or
// file-backed scenario and emit a machine-readable JSON ColoringReport;
// `scol-cli campaign` runs a whole scenario x algorithm x seed grid with
// the consistency oracle; `scol-cli probe` reports a graph's certified
// structure and which algorithms' preconditions it satisfies.
//
//   $ scol-cli --algo sparse --gen regular:n=512,d=4 --k 4
//   $ scol-cli --algo gps --gen planar:n=800 --pretty
//   $ scol-cli --algo greedy --gen file:path=examples/graphs/grotzsch.col
//   $ scol-cli probe --gen file:path=my.mtx       # structure + eligibility
//   $ scol-cli gen --gen rmat:scale=20 --out big.edges   # materialize
//   $ scol-cli --list-algos        # registry contents
//   $ scol-cli --list-gens         # scenario vocabulary
//   $ scol-cli campaign --gen grid --gen regular:n=64,d=4 --algo greedy
//       --algo sparse --seeds 5 --jobs 4 --out runs.jsonl
//   $ scol-cli campaign --gen file:path=g.col --algo all --seeds 3
//
// Flags:
//   --algo NAME        algorithm (required unless listing)
//   --gen SPEC         scenario spec "name:key=val,..." (default grid)
//   --k K              palette-ish parameter / uniform list size
//                      (default max degree + 1 when lists are needed)
//   --lists MODE       uniform | random (palette subsets; default uniform)
//   --palette P        palette size for --lists random (default 4k)
//   --param key=val    per-algorithm parameter (repeatable)
//   --seed S           scenario + algorithm seed (default 1)
//   --threads T        run under a ThreadPoolExecutor with T threads
//   --shards P         run under a ShardedExecutor with P CSR shards:
//                      LOCAL rounds with counted boundary exchange;
//                      results are bit-identical to serial, the report
//                      gains the exchange telemetry metrics
//   --no-exchange-metrics   suppress that telemetry (sharded output is
//                      then byte-identical to the serial report)
//   --round-budget R   RunContext round budget
//   --deadline-ms D    RunContext wall-clock budget
//   --no-validate      skip the independent output validation
//   --with-coloring    include the full coloring in the JSON
//   --no-timing        zero wall_ms in the report (byte-stable output —
//                      what scol-serve caches and scol-bench-load checks)
//   --pretty           indent the JSON
//   --version          print version and exit
//   --help             usage and exit-code summary
//
// Campaign mode (`scol-cli campaign`):
//   --gen SPEC         scenario axis (repeatable; default grid)
//   --algo NAME        algorithm axis (repeatable; "all" = whole registry)
//   --seed S           first seed (default 1)
//   --seeds N          seeds per scenario (default 1)
//   --k / --lists / --palette / --param / --round-budget as above
//   --algo-param NAME:key=val   per-algorithm param override (repeatable)
//   --jobs N           thread pool over instances — one instance is all
//                      algorithms on one generated graph (default 1)
//   --shards P         every job solves under a P-shard ShardedExecutor;
//                      each line gains a "shards" field + exchange
//                      telemetry metrics (default 1 = serial)
//   --no-exchange-metrics   suppress the telemetry: the stream is then
//                      byte-identical to the serial stream for every P
//   --shard i/m        run shard i of m (instances round-robin)
//   --out FILE         JSONL to FILE, summary to stdout (default: JSONL to
//                      stdout, summary to stderr)
//   --summary-only     no JSONL at all: per-job serialization is skipped
//                      (the fast path for pure throughput / summary runs);
//                      summary to stdout. Mutually exclusive with --out
//   --with-timing      real per-line wall_ms (breaks stream bit-identity)
//   --no-probe         disable the probe filter: ineligible cells fail
//                      with a PreconditionError message instead of
//                      becoming status:"skipped" lines
//   --planarity-limit N / --girth-limit L / --mad-limit N
//                      probe cost bounds (same flags as `scol-cli probe`,
//                      so a probe dry run predicts the campaign's skips)
//   --probe-budget B   sampled probes on instances with n + m > B
//                      (certified-but-weaker facts; see io/probe.h)
//
// Probe mode (`scol-cli probe`):
//   --gen SPEC         scenario to probe (generator or file:path=...)
//   --k K              effective k for eligibility (default: per-algorithm
//                      auto, max(3, max_degree + 1) for list algorithms)
//   --param key=val    params visible to precondition checks (repeatable)
//   --seed S           scenario seed (default 1)
//   --planarity-limit N / --girth-limit L / --mad-limit N  probe bounds
//   --probe-budget B   sampled mode above n + m > B (0 = always exact)
//   Prints {scenario, probe, algorithms:[{name, eligible, reason?, k}]}.
//
// Gen mode (`scol-cli gen`):
//   --gen SPEC         scenario to materialize (default grid)
//   --seed S           scenario seed (default 1)
//   --out FILE         output path (required; extension picks the format)
//   --format F         override the format (dimacs|metis|mtx|edges)
//   Writes the graph with scol's own writers and prints one JSON line
//   {spec, seed, path, format, n, m} — the big-graph pipeline's first
//   stage (gen -> parallel read -> probe -> solve).
//
// Exit code: 0 for a kColored/kInfeasible report (both are answers),
// 1 for kFailed (or, in campaign mode, any oracle violation), 2 for
// usage errors.
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "parse_num.h"
#include "scol/api/api.h"
#include "scol/api/oneshot.h"
#include "scol/io/io.h"
#include "scol/util/executor.h"
#include "scol/version.h"

namespace {

using namespace scol;

const char* kUsage =
    "usage: scol-cli --algo NAME [--gen SPEC] [--k K] "
    "[--lists uniform|random] [--palette P]\n"
    "                [--param key=val]... [--seed S] "
    "[--threads T | --shards P] [--round-budget R]\n"
    "                [--deadline-ms D] [--no-validate] "
    "[--with-coloring] [--no-timing] [--pretty]\n"
    "       scol-cli campaign ... | scol-cli probe ... | scol-cli gen ...\n"
    "       scol-cli --list-algos | --list-gens | --version | --help\n"
    "exit codes: 0 colored or infeasible (both are answers; campaign: "
    "no oracle violation),\n"
    "            1 failed report / oracle violation / runtime failure, "
    "2 usage error\n";

[[noreturn]] void usage_error(const std::string& message) {
  std::cerr << "scol-cli: " << message << "\n" << kUsage;
  std::exit(2);
}

void list_algorithms() {
  Json arr = Json::array();
  for (const auto& name : AlgorithmRegistry::instance().names()) {
    const AlgorithmInfo& info = AlgorithmRegistry::instance().at(name);
    Json obj = Json::object();
    obj.set("name", Json::str(info.name));
    obj.set("summary", Json::str(info.summary));
    obj.set("needs_lists", Json::boolean(info.caps.needs_lists));
    obj.set("uses_k", Json::boolean(info.caps.uses_k));
    obj.set("randomized", Json::boolean(info.caps.randomized));
    obj.set("distributed", Json::boolean(info.caps.distributed));
    obj.set("proves_infeasibility",
            Json::boolean(info.caps.proves_infeasibility));
    Json kinds = Json::array();
    for (const auto& k : info.caps.certificate_kinds)
      kinds.push(Json::str(k));
    obj.set("certificate_kinds", std::move(kinds));
    arr.push(std::move(obj));
  }
  std::cout << arr.dump(2) << "\n";
}

void list_scenarios() {
  Json arr = Json::array();
  for (const auto& name : ScenarioRegistry::instance().names()) {
    const ScenarioInfo& info = ScenarioRegistry::instance().at(name);
    Json obj = Json::object();
    obj.set("name", Json::str(info.name));
    obj.set("summary", Json::str(info.summary));
    arr.push(std::move(obj));
  }
  std::cout << arr.dump(2) << "\n";
}

[[noreturn]] void probe_usage_error(const std::string& message) {
  std::cerr << "scol-cli probe: " << message << "\n"
            << "usage: scol-cli probe [--gen SPEC] [--k K] [--seed S] "
               "[--param key=val]...\n"
               "                [--planarity-limit N] [--girth-limit L] "
               "[--mad-limit N]\n"
               "                [--probe-budget B] [--pretty]\n";
  std::exit(2);
}

[[noreturn]] void gen_usage_error(const std::string& message) {
  std::cerr << "scol-cli gen: " << message << "\n"
            << "usage: scol-cli gen [--gen SPEC] [--seed S] --out FILE "
               "[--format dimacs|metis|mtx|edges]\n";
  std::exit(2);
}

// `scol-cli gen ...`: materialize one scenario to a graph file — the
// first stage of the big-graph pipeline (gen -> parallel read -> sampled
// probe -> solve) and the generator half of the reader differential
// tests.
int gen_main(int argc, char** argv) {
  std::string gen = "grid";
  std::string out_path;
  std::string format_arg = "auto";
  std::uint64_t seed = 1;

  const auto need_value = [&](int i, const char* flag) -> std::string {
    if (i + 1 >= argc) gen_usage_error(std::string(flag) + " needs a value");
    return argv[i + 1];
  };
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--gen") {
      gen = need_value(i, "--gen");
      ++i;
    } else if (arg == "--seed") {
      seed = scol_cli_parse::checked_seed(need_value(i, "--seed"), "--seed",
                                          gen_usage_error);
      ++i;
    } else if (arg == "--out") {
      out_path = need_value(i, "--out");
      ++i;
    } else if (arg == "--format") {
      format_arg = need_value(i, "--format");
      ++i;
    } else {
      gen_usage_error("unknown flag '" + arg + "'");
    }
  }
  if (out_path.empty()) gen_usage_error("--out is required");

  try {
    Rng rng(seed);
    const Graph g = build_scenario(gen, rng);
    GraphFormat format = parse_format(format_arg);
    if (format == GraphFormat::kAuto) format = sniff_format(out_path, "");
    write_graph_file(out_path, g, format);

    Json out = Json::object();
    out.set("spec", Json::str(gen));
    out.set("seed", Json::integer(static_cast<std::int64_t>(seed)));
    out.set("path", Json::str(out_path));
    out.set("format", Json::str(format_name(format)));
    out.set("n", Json::integer(g.num_vertices()));
    out.set("m", Json::integer(g.num_edges()));
    std::cout << out.dump(-1) << "\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "scol-cli gen: " << e.what() << "\n";
    return 2;
  }
}

// `scol-cli probe ...`: certified structure of one scenario's graph plus
// the per-algorithm eligibility verdicts — the dry-run companion of
// `campaign --algo all` over arbitrary files.
int probe_main(int argc, char** argv) {
  std::string gen = "grid";
  Vertex k = -1;
  std::uint64_t seed = 1;
  bool pretty = false;
  ParamBag params;
  ProbeOptions probe_options;

  const auto need_value = [&](int i, const char* flag) -> std::string {
    if (i + 1 >= argc) probe_usage_error(std::string(flag) +
                                         " needs a value");
    return argv[i + 1];
  };
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--gen") {
      gen = need_value(i, "--gen");
      ++i;
    } else if (arg == "--k") {
      k = static_cast<Vertex>(scol_cli_parse::checked_int(
          need_value(i, "--k"), "--k", -1,
          std::numeric_limits<Vertex>::max(), probe_usage_error));
      ++i;
    } else if (arg == "--seed") {
      seed = scol_cli_parse::checked_seed(need_value(i, "--seed"), "--seed",
                                          probe_usage_error);
      ++i;
    } else if (arg == "--param") {
      parse_param(params, need_value(i, "--param"));
      ++i;
    } else if (arg == "--planarity-limit") {
      probe_options.planarity_limit = static_cast<Vertex>(
          scol_cli_parse::checked_int(need_value(i, "--planarity-limit"),
                                      "--planarity-limit", 0,
                                      std::numeric_limits<Vertex>::max(),
                                      probe_usage_error));
      ++i;
    } else if (arg == "--girth-limit") {
      probe_options.girth_limit = static_cast<Vertex>(
          scol_cli_parse::checked_int(need_value(i, "--girth-limit"),
                                      "--girth-limit", 0,
                                      std::numeric_limits<Vertex>::max(),
                                      probe_usage_error));
      ++i;
    } else if (arg == "--mad-limit") {
      probe_options.exact_mad_limit = static_cast<Vertex>(
          scol_cli_parse::checked_int(need_value(i, "--mad-limit"),
                                      "--mad-limit", 0,
                                      std::numeric_limits<Vertex>::max(),
                                      probe_usage_error));
      ++i;
    } else if (arg == "--probe-budget") {
      probe_options.budget = scol_cli_parse::checked_int(
          need_value(i, "--probe-budget"), "--probe-budget", 0,
          std::numeric_limits<std::int64_t>::max(), probe_usage_error);
      ++i;
    } else if (arg == "--pretty") {
      pretty = true;
    } else {
      probe_usage_error("unknown flag '" + arg + "'");
    }
  }

  try {
    Rng rng(seed);
    const Graph g = build_scenario(gen, rng);
    const GraphProbe probe = probe_graph(g, probe_options);

    Json out = Json::object();
    Json scenario = Json::object();
    scenario.set("spec", Json::str(gen));
    scenario.set("n", Json::integer(g.num_vertices()));
    scenario.set("m", Json::integer(g.num_edges()));
    scenario.set("max_degree", Json::integer(g.max_degree()));
    out.set("scenario", std::move(scenario));

    Json pj = Json::object();
    pj.set("n", Json::integer(probe.n));
    pj.set("m", Json::integer(probe.m));
    pj.set("max_degree", Json::integer(probe.max_degree));
    pj.set("degeneracy", Json::integer(probe.degeneracy));
    pj.set("degeneracy_exact", Json::boolean(probe.degeneracy_exact));
    pj.set("degeneracy_lower", Json::integer(probe.degeneracy_lower));
    pj.set("sampled", Json::boolean(probe.sampled));
    pj.set("mad_upper", Json::real(probe.mad_upper));
    pj.set("mad_exact", Json::boolean(probe.mad_exact));
    pj.set("arboricity_upper", Json::integer(probe.arboricity_upper));
    pj.set("arboricity_exact", Json::boolean(probe.arboricity_exact));
    pj.set("components", Json::integer(probe.components));
    pj.set("connected", Json::boolean(probe.connected));
    pj.set("forest", Json::boolean(probe.forest));
    pj.set("complete", Json::boolean(probe.complete));
    pj.set("girth", Json::integer(probe.girth));
    pj.set("girth_floor", Json::integer(probe.girth_floor));
    pj.set("triangle_free", Json::boolean(probe.triangle_free));
    pj.set("planar", Json::str(to_string(probe.planar)));
    out.set("probe", std::move(pj));
    out.set("k", Json::integer(k));
    out.set("seed", Json::integer(static_cast<std::int64_t>(seed)));

    // Mirror the campaign's per-job auto-k (effective_k) so the
    // verdicts here predict exactly what `campaign --algo all` would
    // skip, given the same --k/--param/probe-limit values.
    Json algorithms = Json::array();
    for (const auto& name : AlgorithmRegistry::instance().names()) {
      const AlgorithmInfo& info = AlgorithmRegistry::instance().at(name);
      const Vertex k_eff = effective_k(info, k, g.max_degree(), params);
      const std::string reason = algorithm_skip_reason(
          info, EligibilityQuery{&probe, &params, k_eff});
      Json entry = Json::object();
      entry.set("name", Json::str(name));
      entry.set("eligible", Json::boolean(reason.empty()));
      if (!reason.empty()) entry.set("reason", Json::str(reason));
      entry.set("k", Json::integer(k_eff));
      algorithms.push(std::move(entry));
    }
    out.set("algorithms", std::move(algorithms));
    std::cout << out.dump(pretty ? 2 : -1) << "\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "scol-cli probe: " << e.what() << "\n";
    return 2;
  }
}

[[noreturn]] void campaign_usage_error(const std::string& message) {
  std::cerr << "scol-cli campaign: " << message << "\n"
            << "usage: scol-cli campaign [--gen SPEC]... --algo NAME|all "
               "[--algo NAME]...\n"
               "                [--seed S] [--seeds N] [--k K] "
               "[--lists uniform|random] [--palette P]\n"
               "                [--param key=val]... "
               "[--algo-param NAME:key=val]... [--round-budget R]\n"
               "                [--jobs N] [--shards P] "
               "[--no-exchange-metrics] [--shard i/m]\n"
               "                [--out FILE | "
               "--summary-only] [--with-timing] [--no-probe]\n"
               "                [--planarity-limit N] [--girth-limit L] "
               "[--mad-limit N]\n"
               "                [--probe-budget B] [--pretty]\n";
  std::exit(2);
}

// `scol-cli campaign ...`: the grid runner. JSONL goes to --out (or
// stdout), the aggregate summary to stdout (or stderr when the lines own
// stdout), and the exit code surfaces oracle violations.
int campaign_main(int argc, char** argv) {
  CampaignSpec spec;
  CampaignOptions options;
  int jobs = 1;
  bool pretty = false;
  bool summary_only = false;
  std::string out_path;

  const auto need_value = [&](int i, const char* flag) -> std::string {
    if (i + 1 >= argc) campaign_usage_error(std::string(flag) +
                                            " needs a value");
    return argv[i + 1];
  };
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--gen") {
      spec.scenarios.push_back(need_value(i, "--gen"));
      ++i;
    } else if (arg == "--algo") {
      const std::string name = need_value(i, "--algo");
      if (name == "all") {
        for (const auto& n : AlgorithmRegistry::instance().names())
          spec.algorithms.push_back(n);
      } else {
        spec.algorithms.push_back(name);
      }
      ++i;
    } else if (arg == "--seed") {
      spec.seed = scol_cli_parse::checked_seed(need_value(i, "--seed"),
                                               "--seed",
                                               campaign_usage_error);
      ++i;
    } else if (arg == "--seeds") {
      spec.seeds = static_cast<int>(scol_cli_parse::checked_int(
          need_value(i, "--seeds"), "--seeds", 1,
          std::numeric_limits<int>::max(), campaign_usage_error));
      ++i;
    } else if (arg == "--k") {
      spec.k = static_cast<Vertex>(scol_cli_parse::checked_int(
          need_value(i, "--k"), "--k", -1,
          std::numeric_limits<Vertex>::max(), campaign_usage_error));
      ++i;
    } else if (arg == "--lists") {
      spec.lists_mode = need_value(i, "--lists");
      ++i;
    } else if (arg == "--palette") {
      spec.palette = static_cast<Vertex>(scol_cli_parse::checked_int(
          need_value(i, "--palette"), "--palette", -1,
          std::numeric_limits<Vertex>::max(), campaign_usage_error));
      ++i;
    } else if (arg == "--param") {
      parse_param(spec.params, need_value(i, "--param"));
      ++i;
    } else if (arg == "--algo-param") {
      const std::string v = need_value(i, "--algo-param");
      const std::size_t colon = v.find(':');
      if (colon == std::string::npos || colon == 0 || colon + 1 == v.size())
        campaign_usage_error("--algo-param wants NAME:key=val, got '" + v +
                             "'");
      ParamBag bag;
      parse_param(bag, v.substr(colon + 1));
      spec.algo_params.emplace_back(v.substr(0, colon), std::move(bag));
      ++i;
    } else if (arg == "--round-budget") {
      spec.round_budget = scol_cli_parse::checked_int(
          need_value(i, "--round-budget"), "--round-budget", -1,
          std::numeric_limits<std::int64_t>::max(), campaign_usage_error);
      ++i;
    } else if (arg == "--jobs") {
      jobs = static_cast<int>(scol_cli_parse::checked_int(
          need_value(i, "--jobs"), "--jobs", 1,
          std::numeric_limits<int>::max(), campaign_usage_error));
      ++i;
    } else if (arg == "--shards") {
      spec.exec_shards = static_cast<int>(scol_cli_parse::checked_int(
          need_value(i, "--shards"), "--shards", 1,
          std::numeric_limits<int>::max(), campaign_usage_error));
      ++i;
    } else if (arg == "--no-exchange-metrics") {
      spec.exchange_metrics = false;
    } else if (arg == "--shard") {
      std::int64_t shard_index = 0;
      std::int64_t shard_count = 0;
      scol_cli_parse::checked_shard_spec(need_value(i, "--shard"),
                                         &shard_index, &shard_count,
                                         campaign_usage_error);
      options.shard_index = static_cast<int>(shard_index);
      options.shard_count = static_cast<int>(shard_count);
      ++i;
    } else if (arg == "--out") {
      out_path = need_value(i, "--out");
      ++i;
    } else if (arg == "--with-timing") {
      options.include_timing = true;
    } else if (arg == "--summary-only") {
      summary_only = true;
    } else if (arg == "--no-probe") {
      spec.probe = false;
    } else if (arg == "--planarity-limit") {
      spec.probe_options.planarity_limit = static_cast<Vertex>(
          scol_cli_parse::checked_int(need_value(i, "--planarity-limit"),
                                      "--planarity-limit", 0,
                                      std::numeric_limits<Vertex>::max(),
                                      campaign_usage_error));
      ++i;
    } else if (arg == "--girth-limit") {
      spec.probe_options.girth_limit = static_cast<Vertex>(
          scol_cli_parse::checked_int(need_value(i, "--girth-limit"),
                                      "--girth-limit", 0,
                                      std::numeric_limits<Vertex>::max(),
                                      campaign_usage_error));
      ++i;
    } else if (arg == "--mad-limit") {
      spec.probe_options.exact_mad_limit = static_cast<Vertex>(
          scol_cli_parse::checked_int(need_value(i, "--mad-limit"),
                                      "--mad-limit", 0,
                                      std::numeric_limits<Vertex>::max(),
                                      campaign_usage_error));
      ++i;
    } else if (arg == "--probe-budget") {
      spec.probe_options.budget = scol_cli_parse::checked_int(
          need_value(i, "--probe-budget"), "--probe-budget", 0,
          std::numeric_limits<std::int64_t>::max(), campaign_usage_error);
      ++i;
    } else if (arg == "--pretty") {
      pretty = true;
    } else {
      campaign_usage_error("unknown flag '" + arg + "'");
    }
  }
  if (spec.scenarios.empty()) spec.scenarios.push_back("grid");
  if (spec.algorithms.empty())
    campaign_usage_error("--algo is required (name or 'all')");
  if (summary_only && !out_path.empty())
    campaign_usage_error("--summary-only and --out are mutually exclusive");

  try {
    std::ofstream out_file;
    if (!out_path.empty()) {
      out_file.open(out_path);
      if (!out_file) campaign_usage_error("cannot open --out '" + out_path +
                                          "'");
    }
    std::ostream& lines = out_path.empty() ? std::cout : out_file;
    std::ostream& summary =
        (out_path.empty() && !summary_only) ? std::cerr : std::cout;

    // grain=1: the unit of job-level work is one instance, not 256.
    std::unique_ptr<ThreadPoolExecutor> pool;
    if (jobs > 1) {
      pool = std::make_unique<ThreadPoolExecutor>(jobs, /*grain=*/1);
      options.executor = pool.get();
    }

    // --summary-only passes an empty sink: run_campaign's fast path then
    // skips per-job JSONL serialization entirely.
    CampaignSink sink;
    if (!summary_only)
      sink = [&](const std::string& line) { lines << line << "\n"; };
    const CampaignResult result = run_campaign(spec, options, sink);
    lines.flush();
    if (!lines) {
      // Runtime failure (disk full, closed pipe), not a usage error: the
      // JSONL stream is truncated, so don't pretend the run succeeded.
      std::cerr << "scol-cli campaign: write to "
                << (out_path.empty() ? "stdout" : "--out '" + out_path + "'")
                << " failed; JSONL stream is incomplete\n";
      return 1;
    }
    summary << result.summary.dump(pretty ? 2 : -1) << "\n";
    return result.oracle_violations > 0 ? 1 : 0;
  } catch (const std::exception& e) {
    std::cerr << "scol-cli campaign: " << e.what() << "\n";
    return 2;
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::string(argv[1]) == "campaign")
    return campaign_main(argc, argv);
  if (argc > 1 && std::string(argv[1]) == "probe")
    return probe_main(argc, argv);
  if (argc > 1 && std::string(argv[1]) == "gen")
    return gen_main(argc, argv);
  // The run itself is delegated to one_shot_report() — the same code
  // path scol-serve answers requests with, which is what makes served
  // responses byte-identical to this binary's output by construction.
  OneShotSpec spec;
  bool pretty = false;

  const auto need_value = [&](int i, const char* flag) -> std::string {
    if (i + 1 >= argc) usage_error(std::string(flag) + " needs a value");
    return argv[i + 1];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-algos") {
      list_algorithms();
      return 0;
    } else if (arg == "--list-gens") {
      list_scenarios();
      return 0;
    } else if (arg == "--version") {
      std::cout << "scol-cli " << kVersion << "\n";
      return 0;
    } else if (arg == "--help") {
      std::cout << kUsage;
      return 0;
    } else if (arg == "--algo") {
      spec.algorithm = need_value(i, "--algo");
      ++i;
    } else if (arg == "--gen") {
      spec.scenario = need_value(i, "--gen");
      ++i;
    } else if (arg == "--lists") {
      spec.lists_mode = need_value(i, "--lists");
      if (spec.lists_mode != "uniform" && spec.lists_mode != "random")
        usage_error("--lists must be uniform or random");
      ++i;
    } else if (arg == "--k") {
      spec.k = static_cast<Vertex>(scol_cli_parse::checked_int(
          need_value(i, "--k"), "--k", -1,
          std::numeric_limits<Vertex>::max(), usage_error));
      ++i;
    } else if (arg == "--palette") {
      spec.palette = static_cast<Vertex>(scol_cli_parse::checked_int(
          need_value(i, "--palette"), "--palette", -1,
          std::numeric_limits<Vertex>::max(), usage_error));
      ++i;
    } else if (arg == "--param") {
      parse_param(spec.params, need_value(i, "--param"));
      ++i;
    } else if (arg == "--seed") {
      spec.seed = scol_cli_parse::checked_seed(need_value(i, "--seed"),
                                               "--seed", usage_error);
      ++i;
    } else if (arg == "--threads") {
      spec.threads = static_cast<int>(scol_cli_parse::checked_int(
          need_value(i, "--threads"), "--threads", 0,
          std::numeric_limits<int>::max(), usage_error));
      ++i;
    } else if (arg == "--shards") {
      spec.shards = static_cast<int>(scol_cli_parse::checked_int(
          need_value(i, "--shards"), "--shards", 1,
          std::numeric_limits<int>::max(), usage_error));
      ++i;
    } else if (arg == "--no-exchange-metrics") {
      spec.exchange_metrics = false;
    } else if (arg == "--round-budget") {
      spec.round_budget = scol_cli_parse::checked_int(
          need_value(i, "--round-budget"), "--round-budget", -1,
          std::numeric_limits<std::int64_t>::max(), usage_error);
      ++i;
    } else if (arg == "--deadline-ms") {
      spec.deadline_ms = scol_cli_parse::checked_real(
          need_value(i, "--deadline-ms"), "--deadline-ms", -1.0,
          usage_error);
      ++i;
    } else if (arg == "--no-validate") {
      spec.validate = false;
    } else if (arg == "--with-coloring") {
      spec.with_coloring = true;
    } else if (arg == "--no-timing") {
      spec.include_timing = false;
    } else if (arg == "--pretty") {
      pretty = true;
    } else {
      usage_error("unknown flag '" + arg + "'");
    }
  }
  if (spec.algorithm.empty()) usage_error("--algo is required");
  if (spec.threads > 0 && spec.shards > 0)
    usage_error("--threads and --shards are mutually exclusive");

  try {
    const Json out = one_shot_report(spec);
    std::cout << out.dump(pretty ? 2 : -1) << "\n";
    return one_shot_exit_code(out);
  } catch (const std::exception& e) {
    std::cerr << "scol-cli: " << e.what() << "\n";
    return 2;
  }
}
