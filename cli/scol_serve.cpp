// scol-serve — the persistent coloring service. Speaks the NDJSON
// protocol of docs/SERVE.md: one request per line, one response per
// line, responses in arrival order; graphs are cached content-addressed
// and finished reports verbatim, so repeated requests are answered in
// microseconds with bytes identical to a one-shot `scol-cli --no-timing`
// run.
//
//   $ scol-serve                          # pipe mode: stdin → stdout
//   $ scol-serve --port 0 --jobs 4        # TCP on a kernel-picked port
//   $ printf '%s\n' '{"algo":"greedy","gen":"grid"}' | scol-serve
//
// Flags:
//   --port P           TCP mode on 127.0.0.1:P (0 = kernel-assigned; the
//                      chosen port is announced on stderr). Default is
//                      pipe mode (stdin/stdout).
//   --jobs N           worker threads per batch (default 1)
//   --max-batch N      max requests grouped into one batch (default 64)
//   --graph-cache N    resident graph cap, 0 = unbounded (default 64)
//   --report-cache N   resident report cap, 0 = unbounded (default 4096)
//   --version          print version and exit
//   --help             this text
//
// Exit code: 0 after a clean shutdown (EOF on the pipe or a "shutdown"
// request), 1 on a runtime failure (socket error, broken pipe), 2 on a
// usage error.
//
// A client disconnecting mid-response is NOT a runtime failure: SIGPIPE
// is ignored process-wide, so the write error surfaces as EPIPE and the
// server treats it as that connection closing (docs/SERVE.md "Disconnect
// and signal semantics").
#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <limits>
#include <string>

#include "parse_num.h"
#include "scol/serve/server.h"
#include "scol/version.h"

namespace {

using namespace scol;

const char* kUsage =
    "usage: scol-serve [--port P] [--jobs N] [--max-batch N]\n"
    "                  [--graph-cache N] [--report-cache N]\n"
    "                  [--version] [--help]\n"
    "exit codes: 0 clean shutdown (EOF or shutdown request),\n"
    "            1 runtime failure, 2 usage error\n";

[[noreturn]] void usage_error(const std::string& message) {
  std::cerr << "scol-serve: " << message << "\n" << kUsage;
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  // A daemon must outlive its clients: without this, the first client
  // that disconnects while we are mid-write kills the whole process with
  // SIGPIPE. Ignored up front so both TCP connections and pipe-mode
  // stdout report EPIPE through the stream layer instead.
  std::signal(SIGPIPE, SIG_IGN);

  ServerOptions options;
  int port = -1;

  const auto need_value = [&](int i, const char* flag) -> std::string {
    if (i + 1 >= argc) usage_error(std::string(flag) + " needs a value");
    return argv[i + 1];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--version") {
      std::cout << "scol-serve " << kVersion << "\n";
      return 0;
    } else if (arg == "--help") {
      std::cout << kUsage;
      return 0;
    } else if (arg == "--port") {
      port = static_cast<int>(scol_cli_parse::checked_int(
          need_value(i, "--port"), "--port", 0, 65535, usage_error));
      ++i;
    } else if (arg == "--jobs") {
      options.jobs = static_cast<int>(scol_cli_parse::checked_int(
          need_value(i, "--jobs"), "--jobs", 1,
          std::numeric_limits<int>::max(), usage_error));
      ++i;
    } else if (arg == "--max-batch") {
      options.max_batch = static_cast<std::size_t>(
          scol_cli_parse::checked_int(
              need_value(i, "--max-batch"), "--max-batch", 1,
              std::numeric_limits<std::int64_t>::max(), usage_error));
      ++i;
    } else if (arg == "--graph-cache") {
      options.graph_cache_capacity = static_cast<std::size_t>(
          scol_cli_parse::checked_int(
              need_value(i, "--graph-cache"), "--graph-cache", 0,
              std::numeric_limits<std::int64_t>::max(), usage_error));
      ++i;
    } else if (arg == "--report-cache") {
      options.report_cache_capacity = static_cast<std::size_t>(
          scol_cli_parse::checked_int(
              need_value(i, "--report-cache"), "--report-cache", 0,
              std::numeric_limits<std::int64_t>::max(), usage_error));
      ++i;
    } else {
      usage_error("unknown flag '" + arg + "'");
    }
  }

  try {
    Server server(options);
    if (port >= 0) {
      return server.listen_and_serve(port, [](int p) {
        std::cerr << "scol-serve: listening on 127.0.0.1:" << p << "\n";
      });
    }
    // Pipe mode. Unsynced iostreams let in_avail() see what is already
    // buffered, which is what makes batching effective on a full pipe.
    std::ios::sync_with_stdio(false);
    server.serve_stream(std::cin, std::cout);
    if (!std::cout) {
      std::cerr << "scol-serve: write to stdout failed\n";
      return 1;
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "scol-serve: " << e.what() << "\n";
    return 1;
  }
}
